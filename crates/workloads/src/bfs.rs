//! BFS (§V-C / Table IV), interpreted end-to-end on the simulated
//! machine.
//!
//! The graph (CSR) lives in NxP-side DRAM. The Flick variant annotates
//! the traversal function for the NxP and calls a dummy host function
//! for every newly discovered vertex (one NxP→host→NxP round trip
//! each); the baseline annotates the same traversal for the host, which
//! then reads the graph across PCIe and performs the per-vertex task
//! locally. The *only* source difference is the ISA annotation.

use crate::graph::Graph;
use flick::{Machine, RunError};
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_sim::{Picos, TraceConfig};
use flick_toolchain::{DataDef, ProgramBuilder};

/// Traversal placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BfsMode {
    /// Traversal on the NxP, per-vertex callback migrates to the host.
    Flick,
    /// Traversal on the host over PCIe, callback is a local call.
    HostDirect,
}

/// One interpreted BFS configuration.
#[derive(Clone, Debug)]
pub struct BfsConfig {
    /// Traversal iterations to average over (the paper uses 10).
    pub iterations: u64,
    /// Placement.
    pub mode: BfsMode,
    /// Root selection seed.
    pub seed: u64,
}

/// Interpreted BFS result.
#[derive(Clone, Copy, Debug)]
pub struct BfsResult {
    /// Average time per traversal iteration.
    pub per_iteration: Picos,
    /// Total simulated time of the measured loop.
    pub total: Picos,
    /// Vertices discovered per iteration (reachable set size).
    pub discovered: u64,
    /// NxP→host call migrations observed (Flick mode: one per
    /// discovered vertex per iteration).
    pub callback_migrations: u64,
}

/// Builds the BFS program. Buffer addresses arrive via staged globals.
fn bfs_program(cfg: &BfsConfig) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("bfs");
    for g in [
        "g_rowptr", "g_col", "g_visited", "g_queue", "g_root", "g_iters", "g_count",
    ] {
        p.data(DataDef::bss(g, 8));
    }

    // main: time `iterations` traversals, exit with avg ns/iteration.
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    let done = main.new_label();
    main.li_sym(abi::T0, "g_root");
    main.ld(abi::S3, abi::T0, 0, MemSize::B8);
    main.li_sym(abi::T0, "g_iters");
    main.ld(abi::S1, abi::T0, 0, MemSize::B8);
    main.li(abi::S2, 1); // epoch
    main.call("flick_clock_ns");
    main.mv(abi::S4, abi::A0);
    main.bind(lp);
    main.beq(abi::S1, abi::ZERO, done);
    main.mv(abi::A0, abi::S3);
    main.mv(abi::A1, abi::S2);
    main.call("bfs");
    main.addi(abi::S2, abi::S2, 1);
    main.addi(abi::S1, abi::S1, -1);
    main.jmp(lp);
    main.bind(done);
    main.call("flick_clock_ns");
    main.sub(abi::A0, abi::A0, abi::S4);
    main.li_sym(abi::T0, "g_iters");
    main.ld(abi::T1, abi::T0, 0, MemSize::B8);
    main.divu(abi::A0, abi::A0, abi::T1);
    main.call("flick_exit");
    p.func(main.finish());

    // bfs(a0 = root, a1 = epoch) -> discovered
    let target = match cfg.mode {
        BfsMode::Flick => TargetIsa::Nxp,
        BfsMode::HostDirect => TargetIsa::Host,
    };
    let saves = [
        abi::S0,
        abi::S1,
        abi::S2,
        abi::S3,
        abi::S4,
        abi::S5,
        abi::S6,
        abi::S7,
        abi::S8,
        abi::S9,
    ];
    let mut f = FuncBuilder::new("bfs", target);
    let vloop = f.new_label();
    let eloop = f.new_label();
    let skip = f.new_label();
    let fin = f.new_label();
    f.prologue(96, &saves);
    f.mv(abi::S0, abi::A1); // epoch
    f.li_sym(abi::T0, "g_rowptr");
    f.ld(abi::S1, abi::T0, 0, MemSize::B8);
    f.li_sym(abi::T0, "g_col");
    f.ld(abi::S2, abi::T0, 0, MemSize::B8);
    f.li_sym(abi::T0, "g_visited");
    f.ld(abi::S3, abi::T0, 0, MemSize::B8);
    f.li_sym(abi::T0, "g_queue");
    f.ld(abi::S4, abi::T0, 0, MemSize::B8);
    f.li(abi::S5, 0); // head
    f.li(abi::S6, 0); // tail
    // visited[root] = epoch; queue[tail++] = root; task(root)
    f.add(abi::T0, abi::S3, abi::A0);
    f.st(abi::S0, abi::T0, 0, MemSize::B1);
    f.slli(abi::T1, abi::S6, 2);
    f.add(abi::T1, abi::S4, abi::T1);
    f.st(abi::A0, abi::T1, 0, MemSize::B4);
    f.addi(abi::S6, abi::S6, 1);
    f.call("vertex_task");
    f.bind(vloop);
    f.bge(abi::S5, abi::S6, fin);
    // u = queue[head++]
    f.slli(abi::T0, abi::S5, 2);
    f.add(abi::T0, abi::S4, abi::T0);
    f.ld(abi::S7, abi::T0, 0, MemSize::B4);
    f.addi(abi::S5, abi::S5, 1);
    // i = rowptr[u]; end = rowptr[u+1]
    f.slli(abi::T0, abi::S7, 3);
    f.add(abi::T0, abi::S1, abi::T0);
    f.ld(abi::S8, abi::T0, 0, MemSize::B8);
    f.ld(abi::S9, abi::T0, 8, MemSize::B8);
    f.bind(eloop);
    f.bge(abi::S8, abi::S9, vloop);
    // v = col[i++]
    f.slli(abi::T0, abi::S8, 2);
    f.add(abi::T0, abi::S2, abi::T0);
    f.ld(abi::T1, abi::T0, 0, MemSize::B4);
    f.addi(abi::S8, abi::S8, 1);
    // if visited[v] == epoch: continue
    f.add(abi::T2, abi::S3, abi::T1);
    f.ld(abi::T3, abi::T2, 0, MemSize::B1);
    f.beq(abi::T3, abi::S0, skip);
    // visited[v] = epoch; queue[tail++] = v; task(v)
    f.st(abi::S0, abi::T2, 0, MemSize::B1);
    f.slli(abi::T0, abi::S6, 2);
    f.add(abi::T0, abi::S4, abi::T0);
    f.st(abi::T1, abi::T0, 0, MemSize::B4);
    f.addi(abi::S6, abi::S6, 1);
    f.mv(abi::A0, abi::T1);
    f.call("vertex_task");
    f.bind(skip);
    f.jmp(eloop);
    f.bind(fin);
    // g_count = tail; return tail
    f.li_sym(abi::T0, "g_count");
    f.st(abi::S6, abi::T0, 0, MemSize::B8);
    f.mv(abi::A0, abi::S6);
    f.epilogue(96, &saves);
    p.func(f.finish());

    // The per-vertex "task the host software must perform": a dummy
    // host function (§V-C).
    let mut task = FuncBuilder::new("vertex_task", TargetIsa::Host);
    task.ret();
    p.func(task.finish());
    p
}

/// Stages the CSR arrays and the visited/queue buffers — all in NxP
/// DRAM: the traversal function and its working set are *identical* in
/// both modes (the whole point of the programming model); the baseline
/// host simply reaches all of it across PCIe, which is what makes it a
/// baseline (§V-C).
fn stage(
    m: &mut Machine,
    pid: u64,
    g: &Graph,
    root: u64,
    cfg: &BfsConfig,
) -> Result<(), RunError> {
    let _ = cfg;
    let rowptr_va = m.stage_alloc_nxp(pid, (g.row_ptr.len() as u64) * 8)?;
    let col_va = m.stage_alloc_nxp(pid, (g.col.len() as u64) * 4)?;
    let (visited_va, queue_va) = (
        m.stage_alloc_nxp(pid, g.v)?,
        m.stage_alloc_nxp(pid, g.v * 4)?,
    );
    let mut bytes = Vec::with_capacity(g.row_ptr.len() * 8);
    for &x in &g.row_ptr {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    m.stage_write(pid, rowptr_va, &bytes)?;
    let mut bytes = Vec::with_capacity(g.col.len() * 4);
    for &x in &g.col {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    m.stage_write(pid, col_va, &bytes)?;

    for (name, value) in [
        ("g_rowptr", rowptr_va.as_u64()),
        ("g_col", col_va.as_u64()),
        ("g_visited", visited_va.as_u64()),
        ("g_queue", queue_va.as_u64()),
        ("g_root", root),
        ("g_iters", cfg.iterations),
    ] {
        let sym = m.symbol(pid, name).expect("bfs program defines globals");
        m.stage_write(pid, sym, &value.to_le_bytes())?;
    }
    Ok(())
}

/// Runs interpreted BFS over `graph` with the given configuration.
///
/// # Errors
///
/// Propagates program build/run failures.
///
/// # Panics
///
/// Panics if `cfg.iterations` is zero or exceeds 255: the visited
/// array stores the epoch as one byte, so more iterations would wrap
/// and corrupt the traversal.
pub fn run_bfs(graph: &Graph, cfg: &BfsConfig) -> Result<BfsResult, RunError> {
    assert!(
        (1..=255).contains(&cfg.iterations),
        "iterations must be in 1..=255 (byte-sized visited epochs)"
    );
    let mut m = Machine::builder()
        .trace(TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .build();
    let mut p = bfs_program(cfg);
    let pid = m.load_program(&mut p)?;
    let root = graph.pick_root(cfg.seed);
    stage(&mut m, pid, graph, root, cfg)?;
    let out = m.run_with_fuel(pid, 60_000_000_000)?;
    let per_iteration = Picos::from_nanos(out.exit_code);
    let mut count = [0u8; 8];
    let count_sym = m.symbol(pid, "g_count").expect("bfs defines g_count");
    m.stage_read(pid, count_sym, &mut count)?;
    Ok(BfsResult {
        per_iteration,
        total: per_iteration * cfg.iterations,
        discovered: u64::from_le_bytes(count),
        callback_migrations: out.stats.get("migrations_nxp_to_host"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::rmat;

    fn tiny() -> Graph {
        rmat(256, 2048, 42)
    }

    #[test]
    fn discovers_same_set_in_both_modes() {
        let g = tiny();
        let flick = run_bfs(
            &g,
            &BfsConfig {
                iterations: 1,
                mode: BfsMode::Flick,
                seed: 9,
            },
        )
        .unwrap();
        let base = run_bfs(
            &g,
            &BfsConfig {
                iterations: 1,
                mode: BfsMode::HostDirect,
                seed: 9,
            },
        )
        .unwrap();
        assert_eq!(flick.discovered, base.discovered);
        assert!(flick.discovered > 1, "root should reach something");
    }

    #[test]
    fn interpreted_matches_reference_bfs() {
        let g = tiny();
        let cfg = BfsConfig {
            iterations: 1,
            mode: BfsMode::HostDirect,
            seed: 9,
        };
        let sim = run_bfs(&g, &cfg).unwrap();
        // Reference BFS in Rust.
        let root = g.pick_root(cfg.seed);
        let mut seen = vec![false; g.v as usize];
        let mut q = std::collections::VecDeque::from([root]);
        seen[root as usize] = true;
        let mut n = 1u64;
        while let Some(u) = q.pop_front() {
            for &w in g.neighbours(u) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    n += 1;
                    q.push_back(w as u64);
                }
            }
        }
        assert_eq!(sim.discovered, n);
    }

    #[test]
    fn flick_mode_migrates_per_discovered_vertex() {
        let g = tiny();
        let cfg = BfsConfig {
            iterations: 2,
            mode: BfsMode::Flick,
            seed: 9,
        };
        let r = run_bfs(&g, &cfg).unwrap();
        // One NxP→host call per discovered vertex per iteration (plus
        // none for the baseline legs).
        assert_eq!(r.callback_migrations, r.discovered * cfg.iterations);
    }

    #[test]
    fn baseline_never_migrates() {
        let g = tiny();
        let r = run_bfs(
            &g,
            &BfsConfig {
                iterations: 1,
                mode: BfsMode::HostDirect,
                seed: 9,
            },
        )
        .unwrap();
        assert_eq!(r.callback_migrations, 0);
    }

    #[test]
    fn small_graph_favours_baseline() {
        // Table IV's Epinions1 row: high vertex-to-edge ratio means the
        // per-vertex migration cost dominates and Flick loses.
        let g = tiny(); // v/e = 0.125, higher than Epinions1's 0.149? close
        let flick = run_bfs(
            &g,
            &BfsConfig {
                iterations: 1,
                mode: BfsMode::Flick,
                seed: 9,
            },
        )
        .unwrap();
        let base = run_bfs(
            &g,
            &BfsConfig {
                iterations: 1,
                mode: BfsMode::HostDirect,
                seed: 9,
            },
        )
        .unwrap();
        assert!(
            flick.per_iteration > base.per_iteration,
            "flick {} vs base {}",
            flick.per_iteration,
            base.per_iteration
        );
    }
}
