//! Renders an event trace as a two-column host/NxP timeline — a
//! text version of the paper's Fig. 2 sequence diagram.

use flick_sim::trace::Side;
use flick_sim::{Event, Trace};
use std::fmt::Write as _;

/// One rendered timeline row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Timestamp (formatted).
    pub at: String,
    /// Host-column text (empty if the event is NxP-side).
    pub host: String,
    /// NxP-column text.
    pub nxp: String,
}

fn describe(e: &Event) -> Option<(Side, String)> {
    Some(match e {
        Event::NxFault { side, fault_va } => {
            (*side, format!("exec fault @ {fault_va:#x}"))
        }
        Event::MisalignedFetch { fault_va } => {
            (Side::Nxp, format!("misaligned fetch @ {fault_va:#x}"))
        }
        Event::ThreadSuspended { pid } => (Side::Host, format!("suspend thread {pid}")),
        Event::ThreadWoken { pid } => (Side::Host, format!("wake thread {pid}")),
        Event::DescriptorSent { from, kind, bytes } => {
            (*from, format!("send {kind} ({bytes}B) →"))
        }
        Event::DescriptorReceived { to, kind } => (*to, format!("→ recv {kind}")),
        Event::NxpContextSwitch { switch_in } => (
            Side::Nxp,
            if *switch_in {
                "ctx switch in".to_string()
            } else {
                "ctx switch out".to_string()
            },
        ),
        Event::TlbMiss { side, va, levels } => {
            (*side, format!("tlb miss @ {va:#x} ({levels} levels)"))
        }
        Event::FaultInjected { kind, to } => (*to, format!("⚡ fault: {kind}")),
        Event::CorruptDescriptor { to, seq } => {
            (*to, format!("bad checksum on desc #{seq}"))
        }
        Event::DuplicateDescriptor { to, seq } => {
            (*to, format!("drop duplicate desc #{seq}"))
        }
        Event::NakSent { from, seq } => (*from, format!("NAK desc #{seq}")),
        Event::Retransmit { to, seq, attempt } => {
            (*to, format!("retransmit desc #{seq} (try {attempt})"))
        }
        Event::SpuriousWakeup { pid } => {
            (Side::Host, format!("spurious wakeup pid {pid}"))
        }
        Event::WatchdogFired { pid } => {
            (Side::Host, format!("watchdog fired pid {pid}"))
        }
        Event::MsiLossRecovered { pid, seq } => {
            (Side::Host, format!("lost MSI recovered pid {pid} desc #{seq}"))
        }
        Event::Degraded { pid } => {
            (Side::Host, format!("pid {pid} degraded to host interpreter"))
        }
        Event::EmulatedSegment { pid, from_va } => {
            (Side::Host, format!("pid {pid} emulating NxP code @ {from_va:#x}"))
        }
        Event::DeviceFault { nxp, kind } => {
            (Side::Nxp, format!("💀 nxp{nxp} device fault: {kind}"))
        }
        Event::NxpDeclaredDead { nxp } => {
            (Side::Host, format!("declare nxp{nxp} dead (breaker open)"))
        }
        Event::NxpRejoined { nxp } => {
            (Side::Host, format!("nxp{nxp} rejoined (breaker half-open)"))
        }
        Event::ProbeSucceeded { nxp } => {
            (Side::Nxp, format!("probe ok: nxp{nxp} breaker closed"))
        }
        Event::DescriptorsReaped { nxp, count } => {
            (Side::Host, format!("reap {count} descriptor(s) from nxp{nxp}"))
        }
        Event::FailoverReplaced { pid, from_nxp, to_nxp } => (
            Side::Host,
            format!("failover pid {pid}: nxp{from_nxp} → nxp{to_nxp}"),
        ),
        Event::FailoverReexecuted { pid, on_nxp } => {
            (Side::Host, format!("re-execute pid {pid} leg on nxp{on_nxp}"))
        }
        Event::AdmissionRejected { chan } => {
            (Side::Host, format!("ring full: admission reject on chan {chan}"))
        }
        Event::Marker(m) => (Side::Host, format!("-- {m} --")),
    })
}

/// Converts a trace into timeline rows.
pub fn rows(trace: &Trace) -> Vec<Row> {
    trace
        .events()
        .iter()
        .filter_map(|(t, e)| {
            let (side, text) = describe(e)?;
            Some(match side {
                // Emulator events render in the host column: a degraded
                // leg runs on a host core.
                Side::Host | Side::Emu => Row {
                    at: format!("{t}"),
                    host: text,
                    nxp: String::new(),
                },
                Side::Nxp => Row {
                    at: format!("{t}"),
                    host: String::new(),
                    nxp: text,
                },
            })
        })
        .collect()
}

/// Formats the whole trace as a fixed-width two-column diagram.
///
/// # Examples
///
/// ```
/// use flick_sim::{Event, Picos, Trace};
///
/// let mut t = Trace::default();
/// t.record(Picos::from_micros(1), Event::ThreadSuspended { pid: 1 });
/// let s = flick::timeline::format(&t);
/// assert!(s.contains("suspend thread 1"));
/// ```
pub fn format(trace: &Trace) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:>12}  {:<38}  {:<38}", "time", "HOST", "NXP");
    let _ = writeln!(s, "{:>12}  {:-<38}  {:-<38}", "", "", "");
    for r in rows(trace) {
        let _ = writeln!(s, "{:>12}  {:<38}  {:<38}", r.at, r.host, r.nxp);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_sim::Picos;

    #[test]
    fn renders_columns_by_side() {
        let mut t = Trace::default();
        t.record(
            Picos::from_nanos(10),
            Event::NxFault {
                side: Side::Host,
                fault_va: 0x1000,
            },
        );
        t.record(
            Picos::from_nanos(20),
            Event::DescriptorReceived {
                to: Side::Nxp,
                kind: "h2n-call",
            },
        );
        let rs = rows(&t);
        assert_eq!(rs.len(), 2);
        assert!(!rs[0].host.is_empty() && rs[0].nxp.is_empty());
        assert!(rs[1].host.is_empty() && !rs[1].nxp.is_empty());
        let text = format(&t);
        assert!(text.contains("exec fault"));
        assert!(text.contains("recv h2n-call"));
    }

    #[test]
    fn full_round_trip_renders_fig2_sequence() {
        use crate::Machine;
        use flick_isa::{FuncBuilder, TargetIsa};
        use flick_toolchain::ProgramBuilder;

        let mut m = Machine::paper_default();
        let mut p = ProgramBuilder::new("t");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("nxp_f");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_f", TargetIsa::Nxp);
        f.ret();
        p.func(f.finish());
        let pid = m.load_program(&mut p).unwrap();
        m.run(pid).unwrap();
        let text = format(m.trace());
        // The Fig. 2 (a)→(g) order as text.
        let fault = text.find("exec fault").unwrap();
        let send = text.find("send h2n-call").unwrap();
        let recv = text.find("recv h2n-call").unwrap();
        let back = text.find("send n2h-ret").unwrap();
        let wake = text.find("wake thread").unwrap();
        assert!(fault < send && send < recv && recv < back && back < wake);
    }
}
