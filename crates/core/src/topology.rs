//! Machine topology: how many host and NxP cores, and where migrated
//! calls land.
//!
//! The paper's NxPs are many-core devices (tens of wimpy cores on a
//! SmartNIC), and migration *throughput* under concurrency — not just
//! one-shot latency — is the number that matters at scale. A
//! [`Topology`] configures the [`crate::Machine`] as N host cores × M
//! NxP cores; [`NxpPlacement`] decides which NxP serves each fresh
//! host→NxP call.

use std::fmt;

/// Core counts for a [`crate::Machine`]: `host_cores` symmetric host
/// cores and `nxp_cores` NxP cores, each NxP behind its own PCIe
/// descriptor channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of host cores (≥ 1).
    pub host_cores: usize,
    /// Number of NxP cores / descriptor channels (≥ 1).
    pub nxp_cores: usize,
}

impl Topology {
    /// A topology with `host_cores` × `nxp_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics when either count is zero.
    pub fn new(host_cores: usize, nxp_cores: usize) -> Self {
        assert!(host_cores >= 1, "at least one host core");
        assert!(nxp_cores >= 1, "at least one NxP core");
        Topology {
            host_cores,
            nxp_cores,
        }
    }

    /// The classic 1×1 pair the paper measures; the default.
    pub fn single() -> Self {
        Topology::new(1, 1)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::single()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.host_cores, self.nxp_cores)
    }
}

/// Which NxP a fresh host→NxP call migrates to. Return legs always
/// follow the thread back to the NxP that holds its continuation, so
/// placement only applies to calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum NxpPlacement {
    /// Calls cycle through the NxPs in index order. Deterministic and
    /// oblivious; the default.
    #[default]
    RoundRobin,
    /// Each call goes to the NxP whose clock is furthest behind (ties
    /// toward the lowest index) — the device that has done the least
    /// simulated work so far.
    LeastLoaded,
}

impl fmt::Display for NxpPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NxpPlacement::RoundRobin => write!(f, "round-robin"),
            NxpPlacement::LeastLoaded => write!(f, "least-loaded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single() {
        assert_eq!(Topology::default(), Topology::new(1, 1));
        assert_eq!(Topology::new(2, 4).to_string(), "2x4");
        assert_eq!(NxpPlacement::default(), NxpPlacement::RoundRobin);
        assert_eq!(NxpPlacement::LeastLoaded.to_string(), "least-loaded");
    }

    #[test]
    #[should_panic(expected = "at least one NxP core")]
    fn zero_nxps_rejected() {
        let _ = Topology::new(1, 0);
    }
}
