//! A small FIR standard library, compiled for **both** ISAs.
//!
//! §III-B motivates OS-triggered migration with exactly this case:
//! "typical software routinely calls functions in pre-compiled shared
//! libraries (e.g., the standard C library), which do not have
//! migration code inserted". Because Flick's trigger is the NX bit, a
//! library needs no instrumentation — it just ships `.text` for each
//! ISA it supports, and calls resolve to whichever side's variant the
//! program links against.
//!
//! Host variants use the plain names (`memcpy`, `gcd`, …); NxP
//! variants are prefixed `nxp_` (the linker-relocation convention of
//! §III-D, as with the allocators). [`add_stdlib`] links all of them
//! into a program.

use flick_isa::{abi, Func, FuncBuilder, MemSize, TargetIsa};
use flick_toolchain::ProgramBuilder;

fn name_for(base: &str, target: TargetIsa) -> String {
    if target == TargetIsa::Host {
        base.to_string()
    } else if target == TargetIsa::Nxp {
        // The classic NxP keeps its historical prefix (§III-D).
        format!("nxp_{base}")
    } else {
        format!("{}_{base}", target.name())
    }
}

/// `memcpy(dst, src, n) -> dst`: byte copy.
pub fn memcpy(target: TargetIsa) -> Func {
    let mut f = FuncBuilder::new(name_for("memcpy", target), target);
    let lp = f.new_label();
    let done = f.new_label();
    f.mv(abi::T3, abi::A0); // preserve dst for return
    f.bind(lp);
    f.beq(abi::A2, abi::ZERO, done);
    f.ld(abi::T0, abi::A1, 0, MemSize::B1);
    f.st(abi::T0, abi::A0, 0, MemSize::B1);
    f.addi(abi::A0, abi::A0, 1);
    f.addi(abi::A1, abi::A1, 1);
    f.addi(abi::A2, abi::A2, -1);
    f.jmp(lp);
    f.bind(done);
    f.mv(abi::A0, abi::T3);
    f.ret();
    f.finish()
}

/// `memset(dst, byte, n) -> dst`.
pub fn memset(target: TargetIsa) -> Func {
    let mut f = FuncBuilder::new(name_for("memset", target), target);
    let lp = f.new_label();
    let done = f.new_label();
    f.mv(abi::T3, abi::A0);
    f.bind(lp);
    f.beq(abi::A2, abi::ZERO, done);
    f.st(abi::A1, abi::A0, 0, MemSize::B1);
    f.addi(abi::A0, abi::A0, 1);
    f.addi(abi::A2, abi::A2, -1);
    f.jmp(lp);
    f.bind(done);
    f.mv(abi::A0, abi::T3);
    f.ret();
    f.finish()
}

/// `gcd(a, b)` by Euclid's algorithm.
pub fn gcd(target: TargetIsa) -> Func {
    let mut f = FuncBuilder::new(name_for("gcd", target), target);
    let lp = f.new_label();
    let done = f.new_label();
    f.bind(lp);
    f.beq(abi::A1, abi::ZERO, done);
    f.remu(abi::T0, abi::A0, abi::A1);
    f.mv(abi::A0, abi::A1);
    f.mv(abi::A1, abi::T0);
    f.jmp(lp);
    f.bind(done);
    f.ret();
    f.finish()
}

/// `umin(a, b)`.
pub fn umin(target: TargetIsa) -> Func {
    let mut f = FuncBuilder::new(name_for("umin", target), target);
    let keep = f.new_label();
    f.bltu(abi::A0, abi::A1, keep);
    f.mv(abi::A0, abi::A1);
    f.bind(keep);
    f.ret();
    f.finish()
}

/// `umax(a, b)`.
pub fn umax(target: TargetIsa) -> Func {
    let mut f = FuncBuilder::new(name_for("umax", target), target);
    let keep = f.new_label();
    f.bgeu(abi::A0, abi::A1, keep);
    f.mv(abi::A0, abi::A1);
    f.bind(keep);
    f.ret();
    f.finish()
}

/// `popcount(x)`: number of set bits.
pub fn popcount(target: TargetIsa) -> Func {
    let mut f = FuncBuilder::new(name_for("popcount", target), target);
    let lp = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(lp);
    f.beq(abi::A0, abi::ZERO, done);
    f.andi(abi::T1, abi::A0, 1);
    f.add(abi::T0, abi::T0, abi::T1);
    f.srli(abi::A0, abi::A0, 1);
    f.jmp(lp);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    f.finish()
}

/// `strlen(p)`: length of a NUL-terminated byte string.
pub fn strlen(target: TargetIsa) -> Func {
    let mut f = FuncBuilder::new(name_for("strlen", target), target);
    let lp = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(lp);
    f.add(abi::T1, abi::A0, abi::T0);
    f.ld(abi::T2, abi::T1, 0, MemSize::B1);
    f.beq(abi::T2, abi::ZERO, done);
    f.addi(abi::T0, abi::T0, 1);
    f.jmp(lp);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    f.finish()
}

/// `fib(n)`: iterative Fibonacci.
pub fn fib(target: TargetIsa) -> Func {
    let mut f = FuncBuilder::new(name_for("fib", target), target);
    let lp = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0); // a
    f.li(abi::T1, 1); // b
    f.bind(lp);
    f.beq(abi::A0, abi::ZERO, done);
    f.add(abi::T2, abi::T0, abi::T1);
    f.mv(abi::T0, abi::T1);
    f.mv(abi::T1, abi::T2);
    f.addi(abi::A0, abi::A0, -1);
    f.jmp(lp);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    f.finish()
}

/// `checksum(ptr, n)`: a simple rolling 64-bit checksum over bytes
/// (`h = h*31 + byte`), handy for verifying cross-ISA data movement.
pub fn checksum(target: TargetIsa) -> Func {
    let mut f = FuncBuilder::new(name_for("checksum", target), target);
    let lp = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.li(abi::T3, 31);
    f.bind(lp);
    f.beq(abi::A1, abi::ZERO, done);
    f.ld(abi::T1, abi::A0, 0, MemSize::B1);
    f.mul(abi::T0, abi::T0, abi::T3);
    f.add(abi::T0, abi::T0, abi::T1);
    f.addi(abi::A0, abi::A0, 1);
    f.addi(abi::A1, abi::A1, -1);
    f.jmp(lp);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    f.finish()
}

/// All library functions for one target.
pub fn funcs_for(target: TargetIsa) -> Vec<Func> {
    vec![
        memcpy(target),
        memset(target),
        gcd(target),
        umin(target),
        umax(target),
        popcount(target),
        strlen(target),
        fib(target),
        checksum(target),
    ]
}

/// Links both ISA variants of the standard library into a program.
pub fn add_stdlib(p: &mut ProgramBuilder) {
    for f in funcs_for(TargetIsa::Host) {
        p.func(f);
    }
    for f in funcs_for(TargetIsa::Nxp) {
        p.func(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use flick_sim::{TraceConfig, Xoshiro256};

    /// Runs `body(main)` after stdlib is linked; returns the exit code.
    fn run(body: impl FnOnce(&mut FuncBuilder)) -> u64 {
        let mut p = ProgramBuilder::new("stdlib-test");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        body(&mut main);
        main.call("flick_exit");
        p.func(main.finish());
        add_stdlib(&mut p);
        let mut m = Machine::builder()
            .trace(TraceConfig {
                enabled: false,
                capacity: 0,
            })
            .build();
        let pid = m.load_program(&mut p).unwrap();
        m.run(pid).unwrap().exit_code
    }

    /// Calls a two-argument library function on both sides and checks
    /// each against the reference.
    fn check2(base: &str, a: u64, b: u64, expected: u64) {
        for prefix in ["", "nxp_"] {
            let name = format!("{prefix}{base}");
            let got = run(|main| {
                main.li(abi::A0, a as i64);
                main.li(abi::A1, b as i64);
                main.call(&name);
            });
            assert_eq!(got, expected, "{name}({a}, {b})");
        }
    }

    #[test]
    fn gcd_both_isas() {
        let mut rng = Xoshiro256::seeded(1);
        for _ in 0..5 {
            let a = rng.gen_range(1, 1 << 20);
            let b = rng.gen_range(1, 1 << 20);
            let mut x = a;
            let mut y = b;
            while y != 0 {
                let t = x % y;
                x = y;
                y = t;
            }
            check2("gcd", a, b, x);
        }
    }

    #[test]
    fn min_max_both_isas() {
        check2("umin", 17, 4, 4);
        check2("umax", 17, 4, 17);
        check2("umin", u64::MAX, 1, 1);
        check2("umax", u64::MAX, 1, u64::MAX);
    }

    #[test]
    fn popcount_both_isas() {
        for (x, e) in [(0u64, 0u64), (1, 1), (0xFF, 8), (u64::MAX, 64), (0xA5A5, 8)] {
            for prefix in ["", "nxp_"] {
                let name = format!("{prefix}popcount");
                let got = run(|main| {
                    main.li(abi::A0, x as i64);
                    main.call(&name);
                });
                assert_eq!(got, e, "{name}({x:#x})");
            }
        }
    }

    #[test]
    fn fib_both_isas() {
        for (n, e) in [(0u64, 0u64), (1, 1), (10, 55), (30, 832_040)] {
            for prefix in ["", "nxp_"] {
                let name = format!("{prefix}fib");
                let got = run(|main| {
                    main.li(abi::A0, n as i64);
                    main.call(&name);
                });
                assert_eq!(got, e, "{name}({n})");
            }
        }
    }

    #[test]
    fn memcpy_memset_checksum_cross_isa_agree() {
        // Host memsets a host buffer, copies it into NxP memory with
        // the *NxP* memcpy (data pulled across the boundary by the far
        // side), then both sides checksum it and must agree.
        let code = run(|main| {
            // main is the entry point: callee-saved registers are free.
            // hbuf = malloc_host(64); memset(hbuf, 0x5A, 64)
            main.li(abi::A0, 64);
            main.call("malloc_host");
            main.mv(abi::S1, abi::A0);
            main.li(abi::A1, 0x5A);
            main.li(abi::A2, 64);
            main.call("memset");
            // nbuf = malloc_nxp(64); nxp_memcpy(nbuf, hbuf, 64)
            main.li(abi::A0, 64);
            main.call("malloc_nxp");
            main.mv(abi::S2, abi::A0);
            main.mv(abi::A1, abi::S1);
            main.li(abi::A2, 64);
            main.call("nxp_memcpy");
            // host checksum of nbuf vs nxp checksum of hbuf: equal.
            main.mv(abi::A0, abi::S2);
            main.li(abi::A1, 64);
            main.call("checksum");
            main.mv(abi::T3, abi::A0);
            main.mv(abi::A0, abi::S1);
            main.li(abi::A1, 64);
            // T3 is caller-saved but nxp_checksum's migration handler
            // only touches t0-t2 — still, keep it in s1 to be ABI-clean.
            main.mv(abi::S1, abi::T3);
            main.call("nxp_checksum");
            main.sub(abi::A0, abi::A0, abi::S1); // 0 iff equal
        });
        assert_eq!(code, 0, "checksums disagree across ISAs");
    }

    #[test]
    fn strlen_both_isas() {
        // Stage a string in host memory via memset-free path: build it
        // with stores.
        let got = run(|main| {
            main.li(abi::A0, 16);
            main.call("malloc_host");
            main.mv(abi::S1, abi::A0);
            for (i, b) in b"flick\0".iter().enumerate() {
                main.li(abi::T0, *b as i64);
                main.st(abi::T0, abi::S1, i as i32, MemSize::B1);
            }
            main.mv(abi::A0, abi::S1);
            main.call("nxp_strlen"); // NxP reads host memory over PCIe
        });
        assert_eq!(got, 5);
    }
}
