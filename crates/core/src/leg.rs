//! The NxP migration leg as a pure function over owned state.
//!
//! A *leg* is one NxP-side execution episode: a descriptor lands on the
//! device, the thread context-switches in, runs interpreted FIR (taking
//! exec-fault redirects and runtime services), and finally hands a
//! descriptor back toward the host. In the sequential engine the leg
//! ran inline inside `Machine::nxp_execute`; here it is extracted into
//! [`leg_run`], a free function over a [`LegJob`] that owns everything
//! the leg touches — the NxP [`Core`], a private [`PhysMem`] holding
//! the process's frames, the thread's checkpointed context, and the
//! descriptor bytes.
//!
//! Ownership is what makes parallel host execution deterministic: a
//! job carries no shared mutable state, so `leg_run(job)` computes the
//! same [`LegResult`] whether it runs inline on the coordinator thread
//! (serialized mode, `threads = 1`) or on a worker thread of the
//! [`ParEngine`] (pipelined mode). All timestamps come from the leg's
//! own simulated NxP clock; trace events are buffered in dispatch
//! order and spliced into the global trace at join time, so the merged
//! timeline is independent of worker count and OS scheduling.

use crate::descriptor::{DescKind, MigrationDescriptor};
use crate::machine::RunError;
use crate::nxp::{NxpThread, NxpTiming};
use crate::services::{self as svc, desc_layout as L};
use flick_cpu::{Core, CpuContext, Exception, InstFaultKind, MemEnv, StopReason};
use flick_isa::abi;
use flick_mem::{PhysAddr, PhysMem, VirtAddr};
use flick_os::kernel::nxp_heap_bump;
use flick_sim::trace::Side;
use flick_sim::{CoreId, Event, Picos};
use flick_toolchain::layout;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Everything one NxP leg needs, owned. Built by the coordinator at
/// dispatch, consumed by [`leg_run`] on whichever thread executes it.
pub(crate) struct LegJob {
    /// Monotone dispatch counter; joins match results back by this.
    pub leg_id: u64,
    /// Channel / NxP index the leg runs on.
    pub nc: usize,
    /// The migrating thread.
    pub pid: u64,
    /// The NxP core, moved out of the fleet for the leg's duration.
    pub core: Core,
    /// Private physical memory: the whole machine memory in serialized
    /// mode, or just this process's frames in pipelined mode.
    pub mem: PhysMem,
    /// Memory map + latency model (cheap clone, `Arc`s inside).
    pub env: MemEnv,
    /// NxP runtime path costs.
    pub timing: NxpTiming,
    /// Wire bytes of the inbound descriptor.
    pub in_bytes: Vec<u8>,
    /// The decoded inbound descriptor.
    pub desc: MigrationDescriptor,
    /// The thread's NxP-side state, detached from the runtime.
    pub thread: NxpThread,
    /// `(handler_loop, handler_entry)` VAs, if the program has a
    /// handler table.
    pub handlers: Option<(VirtAddr, VirtAddr)>,
    /// The thread's NxP stack pointer (for outbound descriptors).
    pub nxp_stack_ptr: u64,
    /// Observability span carried on outbound descriptors.
    pub span: u64,
    /// NxP heap cursor; `ALLOC_NXP` bumps it leg-locally.
    pub nxp_brk: VirtAddr,
    /// Physical address of the SRAM descriptor buffer.
    pub desc_phys: PhysAddr,
    /// Fuel per `Core::run` call. Serialized mode uses one huge chunk
    /// (byte-identical to the original inline loop); pipelined mode
    /// uses small chunks so the leg's clock snapshot stays fresh.
    pub chunk_fuel: u64,
    /// The leg publishes its NxP clock here after every chunk; the
    /// coordinator polls it to decide when a join cannot be deferred.
    pub clock_pub: Arc<AtomicU64>,
    /// Chaos seam: the executing worker panics instead of running the
    /// leg. Only set by tests, to exercise the `WorkerDied` surface.
    pub panic_inject: bool,
}

/// What a leg hands back at join time.
pub(crate) struct LegResult {
    /// Copied from the job.
    pub leg_id: u64,
    /// Copied from the job.
    pub nc: usize,
    /// Copied from the job.
    pub pid: u64,
    /// The core, with its advanced clock and counters.
    pub core: Core,
    /// The private memory, frames to be adopted back.
    pub mem: PhysMem,
    /// The thread state (checkpointed context, fault target).
    pub thread: NxpThread,
    /// Final heap cursor, written back to the task at join.
    pub nxp_brk: VirtAddr,
    /// Instructions retired by this leg.
    pub retired: u64,
    /// `migrations_nxp_to_host` delta.
    pub migrations_nxp_to_host: u64,
    /// `returns_nxp_to_host` delta.
    pub returns_nxp_to_host: u64,
    /// `nxp_exec_faults` delta.
    pub nxp_exec_faults: u64,
    /// Trace events in emission order, spliced at the leg's dispatch
    /// position in the global trace.
    pub events: Vec<(Option<CoreId>, Picos, Event)>,
    /// NxP clock when the outbound descriptor was handed to the DMA
    /// engine (the `NxpSubmit` span mark instant).
    pub submit_at: Option<Picos>,
    /// The outbound descriptor (`seq` still 0 — the coordinator owns
    /// sequence spaces), or the error that ended the leg.
    pub outcome: Result<MigrationDescriptor, RunError>,
}

/// Runs `core` until a terminal stop, in `chunk_fuel`-sized slices,
/// publishing the simulated clock after each slice. The per-segment
/// budget mirrors the sequential engine's single `u64::MAX / 2` run
/// call: the leg only reports `OutOfFuel` once the whole budget is
/// spent, so chunking is invisible to the simulated timeline.
fn run_segment(
    core: &mut Core,
    mem: &mut PhysMem,
    env: &MemEnv,
    chunk_fuel: u64,
    clock_pub: &AtomicU64,
    retired: &mut u64,
) -> StopReason {
    let mut budget = u64::MAX / 2;
    loop {
        let before = core.counters().instructions;
        let stop = core.run(mem, env, chunk_fuel.min(budget));
        let used = core.counters().instructions - before;
        *retired += used;
        budget = budget.saturating_sub(used);
        clock_pub.store(core.clock().now().as_picos(), Ordering::Relaxed);
        match stop {
            StopReason::OutOfFuel if budget > 0 => continue,
            other => return other,
        }
    }
}

/// Executes one NxP leg to completion over owned state. This is the
/// body of the sequential engine's `nxp_execute` plus the device half
/// of `nxp_send`, verbatim in behavior: same clock advances, same
/// trace events at the same instants, same error surfaces.
pub(crate) fn leg_run(job: LegJob) -> LegResult {
    assert!(!job.panic_inject, "injected leg-worker panic");
    let LegJob {
        leg_id,
        nc,
        pid,
        mut core,
        mut mem,
        env,
        timing: nt,
        in_bytes,
        desc,
        mut thread,
        handlers,
        nxp_stack_ptr,
        span,
        mut nxp_brk,
        desc_phys,
        chunk_fuel,
        clock_pub,
        panic_inject: _,
    } = job;
    let mut events: Vec<(Option<CoreId>, Picos, Event)> = Vec::new();
    let mut retired = 0u64;
    let mut migrations_nxp_to_host = 0u64;
    let mut returns_nxp_to_host = 0u64;
    let mut nxp_exec_faults = 0u64;

    macro_rules! finish {
        ($outcome:expr, $submit:expr) => {
            return LegResult {
                leg_id,
                nc,
                pid,
                core,
                mem,
                thread,
                nxp_brk,
                retired,
                migrations_nxp_to_host,
                returns_nxp_to_host,
                nxp_exec_faults,
                events,
                submit_at: $submit,
                outcome: $outcome,
            }
        };
    }
    macro_rules! fail {
        ($err:expr) => {
            finish!(Err($err), None)
        };
    }

    // Land the descriptor in the NxP-local buffer the handler reads.
    mem.write_bytes(desc_phys, &in_bytes);

    // Context switch the thread in.
    core.clock_mut().advance(nt.context_switch);
    events.push((
        Some(CoreId::nxp(nc)),
        core.clock().now(),
        Event::NxpContextSwitch { switch_in: true },
    ));
    if core.cr3() != PhysAddr(desc.cr3) {
        core.set_cr3(PhysAddr(desc.cr3));
    }
    let leg_isa = core.config().isa;
    if desc.kind == DescKind::HostToNxpCall {
        if let Some(ctx) = thread.idle[leg_isa.tag() as usize].take() {
            // The thread is idle in this ISA's handler loop: resume
            // it; the loop re-reads the descriptor page.
            core.restore_context(&ctx);
        } else {
            // First call of this ISA: the host initialised the stack;
            // the thread starts inside the handler's while() loop
            // (§IV-B1). A nested call — outer accelerator frames
            // parked elsewhere — continues below the innermost parked
            // frame, so the per-thread stack slot nests naturally.
            let Some((loop_va, _)) = handlers else {
                fail!(RunError::Protocol {
                    side: Side::Nxp,
                    context: "descriptor for a process with no handler table",
                });
            };
            let sp = thread
                .parks
                .last()
                .map(|c| c.regs[abi::SP.index()])
                .unwrap_or(desc.nxp_sp);
            let mut ctx = CpuContext {
                pc: loop_va,
                ..CpuContext::default()
            };
            ctx.regs[abi::SP.index()] = sp;
            ctx.regs[abi::S0.index()] = layout::NXP_DESC_VA;
            core.restore_context(&ctx);
        }
    } else {
        let Some(ctx) = thread.parks.pop() else {
            fail!(RunError::Protocol {
                side: Side::Nxp,
                context: "return descriptor for a thread with no parked frame",
            });
        };
        core.restore_context(&ctx);
    }

    // Run until the thread emits a descriptor toward the host.
    let out = loop {
        let stop = run_segment(
            &mut core,
            &mut mem,
            &env,
            chunk_fuel,
            &clock_pub,
            &mut retired,
        );
        match stop {
            StopReason::Ecall(s) if s == svc::NXP_MIGRATE_AND_SUSPEND => {
                let Some(fault_va) = thread.fault_va.take() else {
                    fail!(RunError::Protocol {
                        side: Side::Nxp,
                        context: "NxP migrate without a saved fault target",
                    });
                };
                let out = MigrationDescriptor {
                    kind: DescKind::NxpToHostCall,
                    target: fault_va.as_u64(),
                    ret: 0,
                    args: [
                        core.reg(abi::A0),
                        core.reg(abi::A1),
                        core.reg(abi::A2),
                        core.reg(abi::A3),
                        core.reg(abi::A4),
                        core.reg(abi::A5),
                    ],
                    pid,
                    cr3: core.cr3().as_u64(),
                    nxp_sp: nxp_stack_ptr,
                    seq: 0, // assigned by the coordinator at join
                    span,
                };
                migrations_nxp_to_host += 1;
                break out;
            }
            StopReason::Ecall(s) if s == svc::NXP_RETURN_AND_SWITCH => {
                let ret = mem.read_u64(PhysAddr(desc_phys.as_u64() + L::RET));
                let out = MigrationDescriptor {
                    kind: DescKind::NxpToHostReturn,
                    target: 0,
                    ret,
                    args: [0; 6],
                    pid,
                    cr3: core.cr3().as_u64(),
                    nxp_sp: nxp_stack_ptr,
                    seq: 0, // assigned by the coordinator at join
                    span,
                };
                returns_nxp_to_host += 1;
                break out;
            }
            StopReason::Ecall(s) if s == svc::ALLOC_NXP => {
                let size = core.reg(abi::A0);
                match nxp_heap_bump(nxp_brk, size) {
                    Ok((base, new_brk)) => {
                        nxp_brk = new_brk;
                        core.set_reg(abi::A0, base.as_u64());
                    }
                    Err(e) => fail!(RunError::Load(e)),
                }
            }
            StopReason::Ecall(s) if s == svc::CLOCK_NS => {
                let ns = core.clock().now().as_nanos();
                core.set_reg(abi::A0, ns);
            }
            StopReason::Fault(Exception::InstFault { va, kind })
                if matches!(
                    kind,
                    InstFaultKind::IsaMismatch
                        | InstFaultKind::Misaligned
                        | InstFaultKind::NxViolation
                ) =>
            {
                // The NxP called a function it cannot execute — host
                // text (`IsaMismatch`), or another accelerator's text
                // (`NxViolation`: NX set but a foreign ISA tag).
                // Either way control escalates through the NxP
                // migration handler (§IV-B2); for a cross-accelerator
                // call the host then re-faults at the same target and
                // re-places it on an NxP of the right ISA.
                nxp_exec_faults += 1;
                match kind {
                    InstFaultKind::Misaligned => events.push((
                        Some(CoreId::nxp(nc)),
                        core.clock().now(),
                        Event::MisalignedFetch {
                            fault_va: va.as_u64(),
                        },
                    )),
                    _ => events.push((
                        Some(CoreId::nxp(nc)),
                        core.clock().now(),
                        Event::NxFault {
                            side: Side::Nxp,
                            fault_va: va.as_u64(),
                        },
                    )),
                }
                core.clock_mut().advance(nt.exception_entry);
                thread.fault_va = Some(va);
                let Some((_, handler)) = handlers else {
                    fail!(RunError::Protocol {
                        side: Side::Nxp,
                        context: "exec fault in a process with no handler table",
                    });
                };
                core.set_pc(handler);
            }
            StopReason::Ecall(service) => fail!(RunError::UnknownService {
                side: Side::Nxp,
                service,
            }),
            StopReason::Fault(exception) => fail!(RunError::Crash {
                side: Side::Nxp,
                exception,
            }),
            StopReason::Halt => {
                let va = core.pc();
                fail!(RunError::Crash {
                    side: Side::Nxp,
                    exception: Exception::InstFault {
                        va,
                        kind: InstFaultKind::Illegal,
                    },
                })
            }
            StopReason::OutOfFuel => fail!(RunError::FuelExhausted),
        }
    };

    // The device half of the send: save the thread, switch to the
    // scheduler, stamp the outbound descriptor. Sequence assignment,
    // DMA, and the MSI happen at join on the coordinator — they touch
    // shared channel state.
    core.clock_mut().advance(nt.desc_build);
    let ctx = core.save_context();
    match out.kind {
        // Escalated a call to the host: the frame parks mid-function,
        // awaiting its return descriptor.
        DescKind::NxpToHostCall => thread.parks.push(ctx),
        // Completed: the thread settles back into this ISA's handler
        // loop, ready for the next call descriptor.
        _ => thread.idle[leg_isa.tag() as usize] = Some(ctx),
    }
    core.clock_mut().advance(nt.context_switch);
    events.push((
        Some(CoreId::nxp(nc)),
        core.clock().now(),
        Event::NxpContextSwitch { switch_in: false },
    ));
    // The wire length is seq-independent, so stamping seq at join
    // keeps this event byte-identical to the sequential engine's.
    let wire_len = out.to_bytes().len();
    events.push((
        Some(CoreId::nxp(nc)),
        core.clock().now(),
        Event::DescriptorSent {
            from: Side::Nxp,
            kind: out.kind.label(),
            bytes: wire_len,
        },
    ));
    let submit_at = core.clock().now();
    clock_pub
        .store(submit_at.as_picos(), Ordering::Relaxed);
    finish!(Ok(out), Some(submit_at))
}

/// The worker pool for pipelined mode: one OS thread per worker, a
/// dedicated job channel per worker (channel `nc` always maps to
/// worker `nc % workers`, so legs of one NxP channel never reorder),
/// and a shared result channel the coordinator joins on.
///
/// A worker that panics mid-leg does not abort the process: the panic
/// is caught, a failure marker is posted on the result channel, and
/// the coordinator surfaces it as [`RunError::WorkerDied`]. The leg's
/// core and private memory are lost with the worker, so the run itself
/// cannot continue — but the caller gets an error, not a crash.
pub(crate) struct ParEngine {
    txs: Vec<Sender<LegJob>>,
    rx: Receiver<Result<LegResult, usize>>,
    handles: Vec<JoinHandle<()>>,
}

impl ParEngine {
    /// Spawns `workers` leg-execution threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (res_tx, rx) = channel::<Result<LegResult, usize>>();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, job_rx) = channel::<LegJob>();
            let res = res_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    // The job is moved into the leg, so there is no
                    // shared state a mid-leg panic could have poisoned.
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        leg_run(job)
                    }))
                    .map_err(|_| w);
                    let died = out.is_err();
                    if res.send(out).is_err() || died {
                        break;
                    }
                }
            }));
            txs.push(tx);
        }
        ParEngine { txs, rx, handles }
    }

    /// Ships a job to the worker owning channel `nc`.
    ///
    /// # Errors
    ///
    /// [`RunError::WorkerDied`] when that worker's thread has exited
    /// (its job channel is disconnected).
    pub fn submit(&self, nc: usize, job: LegJob) -> Result<(), RunError> {
        let w = nc % self.txs.len();
        self.txs[w]
            .send(job)
            .map_err(|_| RunError::WorkerDied { worker: w })
    }

    /// Blocks for the next completed leg, in completion order. The
    /// coordinator parks results whose `leg_id` it is not waiting for.
    ///
    /// # Errors
    ///
    /// [`RunError::WorkerDied`] when a worker panicked instead of
    /// producing a result.
    pub fn recv(&self) -> Result<LegResult, RunError> {
        match self.rx.recv() {
            Ok(Ok(res)) => Ok(res),
            Ok(Err(worker)) => Err(RunError::WorkerDied { worker }),
            // Unreachable while the engine is alive: a panicking worker
            // posts its failure marker before exiting, and the result
            // receiver outlives every sender otherwise.
            Err(_) => Err(RunError::Protocol {
                side: Side::Host,
                context: "leg result channel closed with no failure marker",
            }),
        }
    }
}

impl Drop for ParEngine {
    fn drop(&mut self) {
        // Closing the job channels lets the workers drain and exit.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
