#![warn(missing_docs)]
//! # Flick: Fast and Lightweight ISA-Crossing Call
//!
//! This crate is the reproduction's core: the migration mechanism of
//! *Flick: Fast and Lightweight ISA-Crossing Call for Heterogeneous-ISA
//! Environments* (ISCA 2020), assembled on top of the simulated
//! platform crates (`flick-cpu`, `flick-os`, `flick-pcie`,
//! `flick-paging`, `flick-mem`).
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`descriptor`] — the migration **call/return descriptors** DMA'd
//!   across PCIe as single bursts (§IV-B).
//! * [`handlers`] — the **user-space migration handlers** of Listings 1
//!   and 2, written in FIR and linked into every application by
//!   [`handlers::add_runtime`], plus the small runtime library
//!   (`malloc_host`, `malloc_nxp`, …) whose per-ISA variants model the
//!   linker-relocated allocators of §III-D.
//! * [`services`] — the `ecall` interface between user FIR code, the
//!   kernel (`ioctl` migrate-and-suspend) and the NxP runtime.
//! * [`nxp`] — the **NxP scheduler/runtime**: polls the DMA status
//!   register, context-switches threads in and out, redirects
//!   exec-faults into the NxP migration handler.
//! * [`machine`] — the [`Machine`]: host cores + NxP cores + DMA +
//!   interrupt controller + kernel, with the full event loop for NX
//!   page-fault-triggered bidirectional thread migration.
//! * [`topology`] — N host cores × M NxPs ([`Topology`]) and the
//!   [`NxpPlacement`] policy that spreads concurrent in-flight calls
//!   across the NxPs.
//! * [`health`] — per-NxP liveness tracking and the failover circuit
//!   breaker ([`HealthMonitor`]) that routes work away from dead
//!   devices and probes rejoining ones.
//!
//! # Quickstart
//!
//! ```
//! use flick::Machine;
//! use flick_isa::{abi, FuncBuilder, TargetIsa};
//! use flick_toolchain::ProgramBuilder;
//!
//! // main() { return nxp_add(40, 2); }  — nxp_add runs on the NxP.
//! let mut p = ProgramBuilder::new("quick");
//! let mut main = FuncBuilder::new("main", TargetIsa::Host);
//! main.li(abi::A0, 40);
//! main.li(abi::A1, 2);
//! main.call("nxp_add");
//! main.call("flick_exit");
//! p.func(main.finish());
//! let mut add = FuncBuilder::new("nxp_add", TargetIsa::Nxp);
//! add.add(abi::A0, abi::A0, abi::A1);
//! add.ret();
//! p.func(add.finish());
//!
//! let mut machine = Machine::paper_default();
//! let pid = machine.load_program(&mut p)?;
//! let outcome = machine.run(pid)?;
//! assert_eq!(outcome.exit_code, 42);
//! assert_eq!(outcome.stats.get("migrations_host_to_nxp"), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod descriptor;
pub mod handlers;
pub mod health;
mod leg;
pub mod machine;
pub mod nxp;
pub mod services;
pub mod serving;
pub mod stdlib;
pub mod timeline;
pub mod topology;

pub use descriptor::{DescError, DescKind, MigrationDescriptor};
pub use health::{BreakerState, HealthMonitor, NxpHealth};
pub use machine::{best_fit_accel_isa, Machine, MachineBuilder, Outcome, RunError};
pub use nxp::NxpTiming;
pub use serving::{ServingCompletion, ServingReport, ServingRequest};
pub use topology::{NxpPlacement, Topology};

// Observability building blocks re-exported for timeline/export users.
pub use flick_sim::{chrome_trace, chrome_trace_named, validate_json, Histogram, Span, SpanMark, SpanStage};
