//! The NxP runtime: scheduler state, timing, and per-thread bookkeeping.
//!
//! On the prototype the NxP has no operating system — just a scheduler
//! that polls the DMA status register, context-switches threads in when
//! descriptors arrive, and services the migration handler's runtime
//! calls (§IV-B). The scheduler's *policy* is implemented natively here
//! with explicit cycle costs; the migration handler itself runs as
//! interpreted FIR on the NxP core.

use flick_cpu::CpuContext;
use flick_mem::VirtAddr;
use flick_sim::Picos;
use std::collections::HashMap;

/// Timing of the NxP runtime paths (charged on the NxP clock).
#[derive(Clone, Debug)]
pub struct NxpTiming {
    /// Poll-loop granularity: worst-case delay between a descriptor
    /// landing and the scheduler's status-register read observing it.
    pub poll_period: Picos,
    /// Parsing a descriptor and locating the thread (scheduler code).
    pub dispatch: Picos,
    /// Saving/restoring the 32-register context (§IV-B1's context
    /// switch on the NxP).
    pub context_switch: Picos,
    /// Exception entry for the exec-fault redirect into the migration
    /// handler.
    pub exception_entry: Picos,
    /// Building an outgoing descriptor and programming the DMA engine.
    pub desc_build: Picos,
}

impl NxpTiming {
    /// Costs for the 200 MHz soft core (counted in its 5 ns cycles).
    pub fn paper_default() -> Self {
        NxpTiming {
            poll_period: Picos::from_nanos(60),       // ~12-cycle poll loop
            dispatch: Picos::from_nanos(300),         // ~60 cycles
            context_switch: Picos::from_nanos(500),   // ~100 cycles
            exception_entry: Picos::from_nanos(250),  // ~50 cycles
            desc_build: Picos::from_nanos(400),       // ~80 cycles
        }
    }
}

impl NxpTiming {
    /// Scales the 200 MHz soft-core costs to a different NxP clock —
    /// the paper's "we anticipate that the overhead of Flick can be
    /// further reduced when using hardened cores" (§V-A). The runtime
    /// paths are cycle-counted, so they shrink linearly with frequency.
    pub fn at_freq(freq: flick_sim::Hertz) -> Self {
        let base = NxpTiming::paper_default();
        let scale = |p: Picos| Picos((p.as_picos() as u128 * 200_000_000 / freq.0 as u128) as u64);
        NxpTiming {
            poll_period: scale(base.poll_period),
            dispatch: scale(base.dispatch),
            context_switch: scale(base.context_switch),
            exception_entry: scale(base.exception_entry),
            desc_build: scale(base.desc_build),
        }
    }
}

impl Default for NxpTiming {
    fn default() -> Self {
        NxpTiming::paper_default()
    }
}

/// Per-thread NxP state held by the scheduler.
///
/// A thread may hold accelerator frames on several cores at once — an
/// rv64 function that calls an arm64 function parks its rv64 frame,
/// bounces through the host, and opens a fresh arm64 frame — so the
/// saved state is a *stack* of mid-frame parks plus one idle
/// handler-loop checkpoint per accelerator ISA.
#[derive(Clone, Debug)]
pub struct NxpThread {
    /// Mid-frame parks, innermost last: one per accelerator frame that
    /// escalated a call to the host and awaits its return descriptor.
    pub parks: Vec<CpuContext>,
    /// Idle handler-loop checkpoints by ISA tag: where the thread sits
    /// between calls of that ISA (the §IV-B1 `while()` loop).
    pub idle: [Option<CpuContext>; flick_isa::IsaId::COUNT],
    /// Fault target saved by the exec-fault redirect, consumed by
    /// `NXP_MIGRATE_AND_SUSPEND` (the runtime's analogue of the
    /// kernel-side `task_struct.fault_va`).
    pub fault_va: Option<VirtAddr>,
}

impl NxpThread {
    /// A thread that has never run on an accelerator.
    pub fn fresh() -> Self {
        NxpThread {
            parks: Vec::new(),
            idle: std::array::from_fn(|_| None),
            fault_va: None,
        }
    }
}

/// The NxP scheduler/runtime state.
#[derive(Debug, Default)]
pub struct NxpRuntime {
    threads: HashMap<u64, NxpThread>,
}

impl NxpRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        NxpRuntime::default()
    }

    /// Per-thread state, created on first touch.
    pub fn thread_mut(&mut self, pid: u64) -> &mut NxpThread {
        self.threads.entry(pid).or_insert_with(NxpThread::fresh)
    }

    /// True when `pid` has previously run on an accelerator.
    pub fn has_context(&self, pid: u64) -> bool {
        self.threads
            .get(&pid)
            .is_some_and(|t| !t.parks.is_empty() || t.idle.iter().any(Option::is_some))
    }

    /// Detaches `pid`'s thread state (created fresh on first touch) so
    /// a migration leg can carry it to a worker thread; paired with
    /// [`NxpRuntime::put_thread`] at join time. While detached the
    /// thread is invisible to the runtime — exactly mirroring the
    /// hardware, where a thread's context lives on whichever side is
    /// executing it.
    pub fn take_thread(&mut self, pid: u64) -> NxpThread {
        self.threads.remove(&pid).unwrap_or_else(NxpThread::fresh)
    }

    /// Re-attaches thread state detached by [`NxpRuntime::take_thread`].
    pub fn put_thread(&mut self, pid: u64, thread: NxpThread) {
        self.threads.insert(pid, thread);
    }

    /// Number of threads the scheduler has seen.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_state_created_on_demand() {
        let mut rt = NxpRuntime::new();
        assert!(!rt.has_context(5));
        rt.thread_mut(5).idle[0] = Some(CpuContext::default());
        assert!(rt.has_context(5));
        assert_eq!(rt.thread_count(), 1);
    }

    #[test]
    fn at_freq_scales_linearly() {
        let fast = NxpTiming::at_freq(flick_sim::Hertz::mhz(1000));
        let base = NxpTiming::paper_default();
        assert_eq!(fast.dispatch * 5, base.dispatch);
        assert_eq!(fast.context_switch * 5, base.context_switch);
        // 200 MHz is the identity.
        let same = NxpTiming::at_freq(flick_sim::Hertz::mhz(200));
        assert_eq!(same.dispatch, base.dispatch);
    }

    #[test]
    fn timing_is_cycle_scaled() {
        let t = NxpTiming::paper_default();
        // All paths are multiples of the 5 ns cycle.
        for v in [
            t.poll_period,
            t.dispatch,
            t.context_switch,
            t.exception_entry,
            t.desc_build,
        ] {
            assert_eq!(v.as_picos() % 5_000, 0);
        }
    }
}
