//! The user-space migration handlers (Listings 1 and 2 of the paper)
//! and the small runtime library, all written in FIR and linked into
//! every Flick application.
//!
//! The handlers are deliberately *reentrant*: every invocation pushes
//! its own frame, so nested bidirectional calls (host→NxP→host→NxP,
//! recursion across the ISA boundary, …) resolve correctly — the
//! property §IV-B highlights.

use crate::services::{self as svc, desc_layout as L};
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_toolchain::{layout, ProgramBuilder};

/// Linker symbol of the host migration handler.
pub const HOST_HANDLER: &str = "__flick_host_handler";
/// Linker symbol of the NxP migration handler entry (exec-fault
/// redirect target).
pub const NXP_HANDLER: &str = "__flick_nxp_handler";
/// Linker symbol of the NxP handler's while-loop — where the scheduler
/// lands a fresh host→NxP call thread ("the target thread starts
/// execution inside the while() loop", §IV-B1).
pub const NXP_HANDLER_LOOP: &str = "__flick_nxp_handler_loop";

/// Symbol of the accelerator-side migration handler for `isa`. The
/// classic NxP keeps its historical name ([`NXP_HANDLER`]); further
/// ISAs get a name carrying the descriptor name, so an N-way binary
/// links one handler per accelerator ISA it uses.
pub fn nxp_handler_symbol(isa: TargetIsa) -> String {
    if isa == TargetIsa::Nxp {
        NXP_HANDLER.to_string()
    } else {
        format!("__flick_{}_handler", isa.name())
    }
}

/// Symbol of the while-loop entry of `isa`'s migration handler (the
/// scheduler's landing point for fresh host→accelerator call threads).
pub fn nxp_handler_loop_symbol(isa: TargetIsa) -> String {
    if isa == TargetIsa::Nxp {
        NXP_HANDLER_LOOP.to_string()
    } else {
        format!("__flick_{}_handler_loop", isa.name())
    }
}

/// Builds the host migration handler (paper Listing 1).
///
/// Entered via the kernel's return-address hijack with the original
/// call's argument registers intact and `ra` pointing at the original
/// call site, so its final `ret` makes the whole migration transparent.
pub fn host_migration_handler() -> flick_isa::Func {
    let mut f = FuncBuilder::new(HOST_HANDLER, TargetIsa::Host);
    let have_stack = f.new_label();
    let lp = f.new_label();
    let done = f.new_label();

    // Prologue: keep ra and s0; the argument registers must survive
    // untouched until the ioctl reads them.
    f.addi(abi::SP, abi::SP, -32);
    f.st(abi::RA, abi::SP, 0, MemSize::B8);
    f.st(abi::S0, abi::SP, 8, MemSize::B8);
    f.li(abi::S0, layout::DESC_PAGE_VA as i64);

    // if (first_time_migration) allocate_nxp_stack();   (lines 3-4)
    f.ld(abi::T0, abi::S0, L::TCB_NXP_SP as i32, MemSize::B8);
    f.bne(abi::T0, abi::ZERO, have_stack);
    f.ecall(svc::ALLOC_NXP_STACK);
    f.bind(have_stack);

    // prepare_host_to_nxp_call + ioctl_migrate_and_suspend   (lines 5-6)
    f.ecall(svc::MIGRATE_AND_SUSPEND);

    // while (nxp_to_host_call) { ... }                  (lines 7-12)
    f.bind(lp);
    f.ld(abi::T0, abi::S0, L::KIND as i32, MemSize::B8);
    f.li(abi::T1, crate::DescKind::NxpToHostCall.tag() as i64);
    f.bne(abi::T0, abi::T1, done);
    f.ld(abi::T2, abi::S0, L::TARGET as i32, MemSize::B8);
    f.ld(abi::A0, abi::S0, L::ARGS as i32, MemSize::B8);
    f.ld(abi::A1, abi::S0, (L::ARGS + 8) as i32, MemSize::B8);
    f.ld(abi::A2, abi::S0, (L::ARGS + 16) as i32, MemSize::B8);
    f.ld(abi::A3, abi::S0, (L::ARGS + 24) as i32, MemSize::B8);
    f.ld(abi::A4, abi::S0, (L::ARGS + 32) as i32, MemSize::B8);
    f.ld(abi::A5, abi::S0, (L::ARGS + 40) as i32, MemSize::B8);
    f.call_reg(abi::T2); // host_rtn = call_target_host_func(args)
    f.st(abi::A0, abi::S0, L::RET as i32, MemSize::B8);
    f.ecall(svc::MIGRATE_RETURN_AND_SUSPEND);
    f.jmp(lp);

    // return nxp_rtn;                                   (lines 13-14)
    f.bind(done);
    f.ld(abi::A0, abi::S0, L::RET as i32, MemSize::B8);
    f.ld(abi::RA, abi::SP, 0, MemSize::B8);
    f.ld(abi::S0, abi::SP, 8, MemSize::B8);
    f.addi(abi::SP, abi::SP, 32);
    f.ret();
    f.finish()
}

/// Builds the NxP migration handler (paper Listing 2), exporting the
/// loop entry as [`NXP_HANDLER_LOOP`].
pub fn nxp_migration_handler() -> flick_isa::Func {
    nxp_migration_handler_for(TargetIsa::Nxp)
}

/// Builds the accelerator-side migration handler for any registered
/// NX-text ISA — the same Listing 2 logic, compiled for `isa` and
/// linked under its own symbols. Every accelerator ISA shares the one
/// descriptor-ring protocol; only the encoding differs.
///
/// # Panics
///
/// Panics when `isa` is the host's own encoding.
pub fn nxp_migration_handler_for(isa: TargetIsa) -> flick_isa::Func {
    assert!(
        isa.descriptor().nx_text,
        "{isa} is host text; the host handler is separate"
    );
    let mut f = FuncBuilder::new(nxp_handler_symbol(isa), isa);
    let lp = f.new_label();
    let done = f.new_label();

    // Entered on an exec-fault redirect: an NxP function called a host
    // function. Push a frame; args stay in registers for the runtime.
    f.addi(abi::SP, abi::SP, -32);
    f.st(abi::RA, abi::SP, 0, MemSize::B8);
    f.st(abi::S0, abi::SP, 8, MemSize::B8);
    f.li(abi::S0, layout::NXP_DESC_VA as i64);

    // prepare_nxp_to_host_call + migrate_and_suspend    (lines 3-4)
    f.ecall(svc::NXP_MIGRATE_AND_SUSPEND);

    // while (host_to_nxp_call) { ... }                  (lines 5-10)
    f.export_label(nxp_handler_loop_symbol(isa), lp);
    f.bind(lp);
    f.ld(abi::T0, abi::S0, L::KIND as i32, MemSize::B8);
    f.li(abi::T1, crate::DescKind::HostToNxpCall.tag() as i64);
    f.bne(abi::T0, abi::T1, done);
    f.ld(abi::T2, abi::S0, L::TARGET as i32, MemSize::B8);
    f.ld(abi::A0, abi::S0, L::ARGS as i32, MemSize::B8);
    f.ld(abi::A1, abi::S0, (L::ARGS + 8) as i32, MemSize::B8);
    f.ld(abi::A2, abi::S0, (L::ARGS + 16) as i32, MemSize::B8);
    f.ld(abi::A3, abi::S0, (L::ARGS + 24) as i32, MemSize::B8);
    f.ld(abi::A4, abi::S0, (L::ARGS + 32) as i32, MemSize::B8);
    f.ld(abi::A5, abi::S0, (L::ARGS + 40) as i32, MemSize::B8);
    f.call_reg(abi::T2); // nxp_rtn = call_target_nxp_func(args)
    f.st(abi::A0, abi::S0, L::RET as i32, MemSize::B8);
    f.ecall(svc::NXP_RETURN_AND_SWITCH);
    f.jmp(lp);

    // return host_rtn;                                  (lines 11-12)
    f.bind(done);
    f.ld(abi::A0, abi::S0, L::RET as i32, MemSize::B8);
    f.ld(abi::RA, abi::SP, 0, MemSize::B8);
    f.ld(abi::S0, abi::SP, 8, MemSize::B8);
    f.addi(abi::SP, abi::SP, 32);
    f.ret();
    f.finish()
}

/// The runtime library: thin `ecall` wrappers, with per-ISA variants of
/// the allocators so that code on either side calls its *local*
/// allocator without crossing the ISA boundary (§III-D's relocated
/// `malloc`).
pub fn runtime_funcs() -> Vec<flick_isa::Func> {
    let mut funcs = Vec::new();

    let wrapper = |name: &str, target: TargetIsa, service: u16| {
        let mut f = FuncBuilder::new(name, target);
        f.ecall(service);
        f.ret();
        f.finish()
    };

    // Host-side library.
    funcs.push({
        let mut f = FuncBuilder::new("flick_exit", TargetIsa::Host);
        f.ecall(svc::EXIT);
        f.halt(); // unreachable; keeps the CFG sane if EXIT ever returns
        f.finish()
    });
    funcs.push(wrapper("flick_print_u64", TargetIsa::Host, svc::PRINT_U64));
    funcs.push(wrapper("flick_print_str", TargetIsa::Host, svc::PRINT_STR));
    funcs.push(wrapper("malloc_host", TargetIsa::Host, svc::ALLOC_HOST));
    funcs.push(wrapper("malloc_nxp", TargetIsa::Host, svc::ALLOC_NXP));
    funcs.push(wrapper("flick_clock_ns", TargetIsa::Host, svc::CLOCK_NS));
    funcs.push(wrapper("flick_sleep_ns", TargetIsa::Host, svc::SLEEP_NS));

    // NxP-side library (same logical calls, local implementations).
    funcs.push(wrapper("nxp_malloc_nxp", TargetIsa::Nxp, svc::ALLOC_NXP));
    funcs.push(wrapper("nxp_clock_ns", TargetIsa::Nxp, svc::CLOCK_NS));

    funcs
}

/// Links the migration handlers and runtime library into a program —
/// the reproduction's analogue of "the migration handler \[is\] linked
/// into the application binary" (§III-B).
///
/// The host handler, the classic NxP handler and the two-ISA runtime
/// are always linked (keeping two-ISA binaries byte-identical to the
/// pre-registry toolchain). If the program already contains functions
/// for further accelerator ISAs, a migration handler and local runtime
/// wrappers for each of those ISAs are linked too.
pub fn add_runtime(p: &mut ProgramBuilder) {
    let mut extra: Vec<TargetIsa> = p
        .funcs()
        .iter()
        .map(|f| f.target)
        .filter(|t| t.descriptor().nx_text && *t != TargetIsa::Nxp)
        .collect();
    extra.sort();
    extra.dedup();

    p.func(host_migration_handler());
    p.func(nxp_migration_handler());
    for f in runtime_funcs() {
        p.func(f);
    }
    for isa in extra {
        p.func(nxp_migration_handler_for(isa));
        for f in accel_runtime_funcs(isa) {
            p.func(f);
        }
    }
}

/// Local runtime wrappers for one extra accelerator ISA, named with the
/// descriptor-name prefix (`arm64_malloc_nxp`, …) per the stdlib
/// convention.
fn accel_runtime_funcs(isa: TargetIsa) -> Vec<flick_isa::Func> {
    let wrapper = |name: String, service: u16| {
        let mut f = FuncBuilder::new(name, isa);
        f.ecall(service);
        f.ret();
        f.finish()
    };
    vec![
        wrapper(format!("{}_malloc_nxp", isa.name()), svc::ALLOC_NXP),
        wrapper(format!("{}_clock_ns", isa.name()), svc::CLOCK_NS),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_isa::Isa;

    #[test]
    fn handlers_encode_for_their_isas() {
        let h = host_migration_handler();
        assert_eq!(h.target, TargetIsa::Host);
        assert!(Isa::X64.encode(&h).is_ok());
        let n = nxp_migration_handler();
        assert_eq!(n.target, TargetIsa::Nxp);
        assert!(Isa::Rv64.encode(&n).is_ok());
    }

    #[test]
    fn nxp_handler_exports_loop_symbol() {
        let n = nxp_migration_handler();
        assert_eq!(n.exports.len(), 1);
        assert_eq!(n.exports[0].0, NXP_HANDLER_LOOP);
    }

    #[test]
    fn runtime_links_into_program() {
        let mut p = ProgramBuilder::new("t");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("flick_exit");
        p.func(main.finish());
        add_runtime(&mut p);
        let img = p.build().unwrap();
        for sym in [
            HOST_HANDLER,
            NXP_HANDLER,
            NXP_HANDLER_LOOP,
            "malloc_host",
            "malloc_nxp",
            "nxp_malloc_nxp",
        ] {
            assert!(img.find_symbol(sym).is_some(), "missing {sym}");
        }
        // The loop symbol points inside the NxP handler.
        let entry = img.find_symbol(NXP_HANDLER).unwrap();
        let lp = img.find_symbol(NXP_HANDLER_LOOP).unwrap();
        assert!(lp > entry && lp < entry + 512);
        assert_eq!(lp % 8, 0, "NxP loop entry must be 8-aligned");
    }

    #[test]
    fn handler_symbols_live_in_correct_sections() {
        let mut p = ProgramBuilder::new("t");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.halt();
        p.func(main.finish());
        add_runtime(&mut p);
        let img = p.build().unwrap();
        let host_h = img.find_symbol(HOST_HANDLER).unwrap();
        let nxp_h = img.find_symbol(NXP_HANDLER).unwrap();
        assert_eq!(img.segment_containing(host_h).unwrap().name, ".text");
        assert_eq!(img.segment_containing(nxp_h).unwrap().name, ".text.riscv");
    }
}
