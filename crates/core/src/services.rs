//! The `ecall` service interface and descriptor-page layout.
//!
//! Host services trap into the simulated kernel (syscalls / the Flick
//! `ioctl`); NxP services trap into the NxP runtime. User-visible
//! wrapper functions for the ordinary services are provided by
//! [`crate::handlers::add_runtime`].

/// Host: terminate the process; `a0` = exit code.
pub const EXIT: u16 = 1;
/// Host: print `a0` as a decimal line on the console.
pub const PRINT_U64: u16 = 2;
/// Host: print the UTF-8 string at `a0` with length `a1`.
pub const PRINT_STR: u16 = 3;
/// Host: allocate `a0` bytes of host-DRAM heap; returns VA in `a0`.
pub const ALLOC_HOST: u16 = 4;
/// Host or NxP: allocate `a0` bytes of NxP-DRAM heap; returns VA in
/// `a0` (the per-region allocator of §III-D).
pub const ALLOC_NXP: u16 = 5;
/// Host or NxP: returns the local clock in nanoseconds in `a0`.
pub const CLOCK_NS: u16 = 6;
/// Host: sleep/busy-work for `a0` nanoseconds (models host-side work
/// between migrations without interpreting a spin loop; used by the
/// Fig. 5b infrequent-migration experiment).
pub const SLEEP_NS: u16 = 7;

/// Host (Flick): allocate this thread's NxP stack and record it in the
/// TCB word of the descriptor page and the `task_struct`. Returns
/// nothing — the handler's argument registers must survive untouched
/// (Listing 1, lines 3–4).
pub const ALLOC_NXP_STACK: u16 = 16;
/// Host (Flick): the migrate-and-suspend `ioctl` for a host→NxP *call*
/// (Listing 1, line 6).
pub const MIGRATE_AND_SUSPEND: u16 = 17;
/// Host (Flick): migrate-and-suspend for a host→NxP *return*
/// (Listing 1, line 11).
pub const MIGRATE_RETURN_AND_SUSPEND: u16 = 18;

/// NxP runtime: build an NxP→host call descriptor from the saved fault
/// target + argument registers, then context-switch to the scheduler
/// (Listing 2, lines 3–4).
pub const NXP_MIGRATE_AND_SUSPEND: u16 = 0x100;
/// NxP runtime: build an NxP→host *return* descriptor and context-
/// switch to the scheduler (Listing 2, line 9).
pub const NXP_RETURN_AND_SWITCH: u16 = 0x101;

/// Byte offsets inside a descriptor (and the descriptor pages).
pub mod desc_layout {
    /// Descriptor kind tag.
    pub const KIND: u64 = 0;
    /// Target function VA.
    pub const TARGET: u64 = 8;
    /// Return value.
    pub const RET: u64 = 16;
    /// Six argument registers.
    pub const ARGS: u64 = 24;
    /// Thread PID (identifies whom to wake, §IV-B1).
    pub const PID: u64 = 72;
    /// Page-table base (the x86 PTBR / CR3).
    pub const CR3: u64 = 80;
    /// The thread's NxP stack pointer.
    pub const NXP_SP: u64 = 88;
    /// Per-direction sequence number: receivers discard descriptors
    /// whose sequence they have already accepted, making doorbell
    /// re-kicks and retransmissions idempotent.
    pub const SEQ: u64 = 96;
    /// FNV-1a-64 checksum over the other 120 bytes; lets a receiver
    /// detect DMA burst corruption and NAK for retransmission. Lives in
    /// previously-reserved padding, so the handlers' field offsets are
    /// unchanged.
    pub const CRC: u64 = 104;
    /// Observability span id (lives in formerly-reserved padding): both
    /// sides of the link attribute their lifecycle marks to the same
    /// migration without any side channel. Always written — the id is
    /// assigned deterministically whether or not span *recording* is
    /// on, so enabling observability never changes the wire bytes.
    pub const SPAN: u64 = 112;
    /// Total wire size — one PCIe burst.
    pub const SIZE: u64 = 128;
    /// Host descriptor page only: the thread-control word holding the
    /// cached NxP stack pointer the handler checks for first-time
    /// migration.
    pub const TCB_NXP_SP: u64 = 128;
}

// Compile-time layout invariants.
const _: () = {
    assert!(desc_layout::NXP_SP + 8 <= desc_layout::SEQ);
    assert!(desc_layout::SEQ + 8 == desc_layout::CRC);
    assert!(desc_layout::CRC + 8 == desc_layout::SPAN);
    assert!(desc_layout::SPAN + 8 <= desc_layout::SIZE);
    assert!(desc_layout::SIZE.is_multiple_of(64), "whole 64-byte beats");
    assert!(NXP_MIGRATE_AND_SUSPEND > MIGRATE_RETURN_AND_SUSPEND);
    assert!(EXIT < ALLOC_NXP_STACK);
};
