//! Open-loop multi-tenant serving: the datacenter-side view of
//! ISA-crossing calls.
//!
//! Every workload elsewhere in the repo is closed-loop — a fixed set of
//! processes issuing their next call only after the previous one
//! returned. A serving fleet is the opposite: requests arrive on their
//! own (open-loop) schedule whether or not the machine has kept up, so
//! queueing delay compounds and the *tail* of the latency distribution
//! — not the mean — decides whether the paper's migration cost is
//! viable on a request path.
//!
//! The driver is deliberately small: tenants are ordinary loaded
//! processes (their CR3s, staged data and NxP SRAM stack slots are set
//! up once), and each request is a cheap task spawn into its tenant's
//! address space ([`flick_os::Kernel::spawn_task`]). The machine's
//! deterministic event loop does the rest — arrivals are just one more
//! source of schedulable work, delivered when the simulated clock of
//! the owning host core reaches the arrival instant, so a whole
//! open-loop run replays bit-identically for any worker-thread count.

use flick_sim::{Picos, Stats};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// One request of the open-loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServingRequest {
    /// Index into the tenant list passed to
    /// [`crate::Machine::run_serving`].
    pub tenant: usize,
    /// Absolute simulated arrival instant.
    pub arrival: Picos,
    /// Opaque request argument, handed to the spawned task in `A0`
    /// (harnesses use it to select the request kind).
    pub arg: u64,
}

/// One finished request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServingCompletion {
    /// Index of the request in the submitted schedule.
    pub request: usize,
    /// The owning tenant.
    pub tenant: usize,
    /// When the request arrived (open-loop: queueing delay counts).
    pub arrival: Picos,
    /// When its task exited.
    pub finished: Picos,
    /// The task's exit code.
    pub exit_code: u64,
}

impl ServingCompletion {
    /// End-to-end latency: exit minus *arrival* (not admission), so the
    /// time a request spent queued behind its tenant's previous request
    /// is charged to it — the open-loop accounting that avoids
    /// coordinated omission.
    pub fn latency(&self) -> Picos {
        self.finished - self.arrival
    }
}

/// The outcome of a serving run.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Every completion, in completion order (deterministic).
    pub completions: Vec<ServingCompletion>,
    /// Fleet-wide stats snapshot at the end of the run — the same fold
    /// a process [`crate::Outcome`] carries, including the
    /// observability histograms when the machine records them.
    pub stats: Stats,
    /// Simulated instant the last request completed.
    pub finished_at: Picos,
}

impl ServingReport {
    /// Exact latency quantile over the completed requests (sorted
    /// vector, nearest-rank) — the report holds every sample, so no
    /// histogram approximation is involved. `q` is clamped to
    /// `[0, 1]`; an empty report returns zero.
    pub fn latency_quantile(&self, q: f64) -> Picos {
        let mut lat: Vec<Picos> = self.completions.iter().map(|c| c.latency()).collect();
        if lat.is_empty() {
            return Picos::ZERO;
        }
        lat.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    }

    /// Completed requests per simulated second.
    pub fn goodput_rps(&self) -> f64 {
        let secs = self.finished_at.as_nanos_f64() * 1e-9;
        if secs <= 0.0 {
            return 0.0;
        }
        self.completions.len() as f64 / secs
    }
}

/// Per-tenant serving state. A tenant's tasks share its host stack,
/// descriptor page and NxP SRAM slot, so at most one request of a
/// tenant runs at a time; later arrivals queue in `deferred`.
#[derive(Debug)]
pub(crate) struct TenantState {
    /// The loaded prototype process requests are spawned from.
    pub(crate) proto: u64,
    /// A request of this tenant is currently live.
    pub(crate) busy: bool,
    /// Arrived-but-not-admitted request indices, FIFO.
    pub(crate) deferred: VecDeque<usize>,
}

/// Driver state for one open-loop run, held by the machine while the
/// event loop is in serving mode.
#[derive(Debug)]
pub(crate) struct ServingCtx {
    /// The full request schedule (indexed by the heaps below).
    pub(crate) reqs: Vec<ServingRequest>,
    /// Per-host-core arrival queues, min-heaps on `(arrival, index)`.
    /// A request belongs to core `tenant % hosts` — tenant affinity,
    /// so admission order per core is deterministic.
    pub(crate) arrivals: Vec<BinaryHeap<Reverse<(Picos, usize)>>>,
    pub(crate) tenants: Vec<TenantState>,
    /// Live request tasks: pid → request index.
    pub(crate) live: HashMap<u64, usize>,
    /// Finished requests, in completion order.
    pub(crate) completions: Vec<ServingCompletion>,
    /// Total requests submitted (the loop's termination target).
    pub(crate) total: usize,
}

impl ServingCtx {
    /// Builds the context: distributes arrivals across host cores by
    /// tenant affinity.
    pub(crate) fn new(tenants: &[u64], reqs: Vec<ServingRequest>, hosts: usize) -> Self {
        let mut arrivals: Vec<BinaryHeap<Reverse<(Picos, usize)>>> =
            (0..hosts).map(|_| BinaryHeap::new()).collect();
        for (i, r) in reqs.iter().enumerate() {
            arrivals[r.tenant % hosts].push(Reverse((r.arrival, i)));
        }
        let total = reqs.len();
        ServingCtx {
            reqs,
            arrivals,
            tenants: tenants
                .iter()
                .map(|&proto| TenantState {
                    proto,
                    busy: false,
                    deferred: VecDeque::new(),
                })
                .collect(),
            live: HashMap::new(),
            completions: Vec::with_capacity(total),
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(request: usize, arrival: u64, finished: u64) -> ServingCompletion {
        ServingCompletion {
            request,
            tenant: 0,
            arrival: Picos::from_nanos(arrival),
            finished: Picos::from_nanos(finished),
            exit_code: 0,
        }
    }

    #[test]
    fn latency_is_charged_from_arrival() {
        let c = comp(0, 100, 175);
        assert_eq!(c.latency(), Picos::from_nanos(75));
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let completions: Vec<ServingCompletion> =
            (0..100).map(|i| comp(i, 0, (i as u64 + 1) * 10)).collect();
        let r = ServingReport {
            completions,
            stats: Stats::default(),
            finished_at: Picos::from_nanos(1000),
        };
        assert_eq!(r.latency_quantile(0.5), Picos::from_nanos(500));
        assert_eq!(r.latency_quantile(0.99), Picos::from_nanos(990));
        assert_eq!(r.latency_quantile(1.0), Picos::from_nanos(1000));
        assert_eq!(r.latency_quantile(0.0), Picos::from_nanos(10));
        // 100 requests over 1 µs of simulated time.
        assert!((r.goodput_rps() - 1e8).abs() < 1.0);
    }

    #[test]
    fn empty_report_is_quietly_zero() {
        let r = ServingReport {
            completions: Vec::new(),
            stats: Stats::default(),
            finished_at: Picos::ZERO,
        };
        assert_eq!(r.latency_quantile(0.999), Picos::ZERO);
        assert_eq!(r.goodput_rps(), 0.0);
    }

    #[test]
    fn arrivals_shard_by_tenant_affinity() {
        let reqs = vec![
            ServingRequest { tenant: 0, arrival: Picos::from_nanos(5), arg: 0 },
            ServingRequest { tenant: 1, arrival: Picos::from_nanos(1), arg: 0 },
            ServingRequest { tenant: 2, arrival: Picos::from_nanos(3), arg: 0 },
        ];
        let ctx = ServingCtx::new(&[10, 11, 12], reqs, 2);
        // Tenants 0 and 2 land on core 0, tenant 1 on core 1.
        assert_eq!(ctx.arrivals[0].len(), 2);
        assert_eq!(ctx.arrivals[1].len(), 1);
        assert_eq!(ctx.total, 3);
    }
}
