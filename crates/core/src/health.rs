//! Per-NxP health tracking and the failover circuit breaker.
//!
//! The host cannot see a device die — it can only observe symptoms:
//! descriptors that never get picked up, retransmit budgets that
//! exhaust, a presence-detect bit that reads zero at a doorbell write.
//! The [`HealthMonitor`] turns those observations into a per-NxP
//! liveness verdict with circuit-breaker semantics:
//!
//! * **Closed** — healthy, in normal placement rotation.
//! * **Open** — declared dead. No new work is placed on it; in-flight
//!   descriptors are reaped and victims re-placed.
//! * **HalfOpen** — the device rejoined (presence detect came back).
//!   Exactly one probe migration is allowed through; success closes
//!   the breaker, failure re-opens it.
//!
//! The monitor is driven entirely by *observed* events on the
//! deterministic simulation timeline — never by peeking at the fault
//! schedule — so failover decisions replay bit-identically and the
//! detection latency (retry budget × back-off) is itself part of the
//! modelled cost.

use flick_sim::Picos;

/// Circuit-breaker state for one NxP.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: placement uses this NxP normally.
    #[default]
    Closed,
    /// Declared dead: excluded from placement until it rejoins.
    Open,
    /// Rejoined, unproven: one probe migration may be routed here.
    HalfOpen,
}

/// Health record for one NxP.
#[derive(Clone, Copy, Debug, Default)]
pub struct NxpHealth {
    /// Current breaker state.
    pub breaker: BreakerState,
    /// Consecutive delivery failures since the last successful
    /// descriptor/MSI activity.
    pub consecutive_failures: u32,
    /// Simulated time of the last observed sign of life (descriptor
    /// pickup or MSI).
    pub last_activity: Picos,
    /// How many times this NxP has been declared dead.
    pub deaths: u64,
    /// How many times its breaker closed again after a probe.
    pub recoveries: u64,
}

/// Heartbeat/liveness tracker for the NxP fleet.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    nxps: Vec<NxpHealth>,
}

impl HealthMonitor {
    /// A monitor for `nxps` devices, all initially healthy.
    pub fn new(nxps: usize) -> Self {
        HealthMonitor {
            nxps: vec![NxpHealth::default(); nxps],
        }
    }

    /// Number of tracked NxPs.
    pub fn len(&self) -> usize {
        self.nxps.len()
    }

    /// True when the monitor tracks no NxPs.
    pub fn is_empty(&self) -> bool {
        self.nxps.is_empty()
    }

    /// The health record of NxP `nxp`.
    pub fn health(&self, nxp: usize) -> &NxpHealth {
        &self.nxps[nxp]
    }

    /// Breaker state of NxP `nxp`.
    pub fn state(&self, nxp: usize) -> BreakerState {
        self.nxps[nxp].breaker
    }

    /// True when NxP `nxp` is declared dead.
    pub fn is_open(&self, nxp: usize) -> bool {
        self.nxps[nxp].breaker == BreakerState::Open
    }

    /// A sign of life from NxP `nxp` at time `at`: a descriptor pickup
    /// or MSI. Resets the failure streak; a successful round on a
    /// half-open breaker closes it (probe success).
    pub fn note_activity(&mut self, nxp: usize, at: Picos) {
        let h = &mut self.nxps[nxp];
        h.consecutive_failures = 0;
        h.last_activity = h.last_activity.max(at);
        if h.breaker == BreakerState::HalfOpen {
            h.breaker = BreakerState::Closed;
            h.recoveries += 1;
        }
    }

    /// A delivery failure toward NxP `nxp`; returns the updated streak.
    pub fn note_failure(&mut self, nxp: usize) -> u32 {
        let h = &mut self.nxps[nxp];
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        h.consecutive_failures
    }

    /// Declares NxP `nxp` dead: breaker opens, placement stops routing
    /// work here. Idempotent.
    pub fn declare_dead(&mut self, nxp: usize) {
        let h = &mut self.nxps[nxp];
        if h.breaker != BreakerState::Open {
            h.breaker = BreakerState::Open;
            h.deaths += 1;
        }
    }

    /// Presence detect came back for a dead NxP: breaker goes
    /// half-open, admitting one probe. No-op unless currently open.
    pub fn rejoin(&mut self, nxp: usize) {
        let h = &mut self.nxps[nxp];
        if h.breaker == BreakerState::Open {
            h.breaker = BreakerState::HalfOpen;
            h.consecutive_failures = 0;
        }
    }

    /// NxP indices eligible for placement: breaker not open, in index
    /// order (deterministic).
    pub fn live(&self) -> impl Iterator<Item = usize> + '_ {
        self.nxps
            .iter()
            .enumerate()
            .filter(|(_, h)| h.breaker != BreakerState::Open)
            .map(|(i, _)| i)
    }

    /// Number of NxPs whose breaker is not open.
    pub fn live_count(&self) -> usize {
        self.live().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_lifecycle() {
        let mut hm = HealthMonitor::new(2);
        assert_eq!(hm.state(1), BreakerState::Closed);
        assert_eq!(hm.live().collect::<Vec<_>>(), vec![0, 1]);

        assert_eq!(hm.note_failure(1), 1);
        assert_eq!(hm.note_failure(1), 2);
        hm.declare_dead(1);
        assert!(hm.is_open(1));
        assert_eq!(hm.health(1).deaths, 1);
        assert_eq!(hm.live().collect::<Vec<_>>(), vec![0]);

        // Idempotent death.
        hm.declare_dead(1);
        assert_eq!(hm.health(1).deaths, 1);

        // Rejoin admits one probe; activity on the half-open breaker
        // closes it.
        hm.rejoin(1);
        assert_eq!(hm.state(1), BreakerState::HalfOpen);
        assert_eq!(hm.health(1).consecutive_failures, 0);
        assert_eq!(hm.live_count(), 2);
        hm.note_activity(1, Picos::from_micros(10));
        assert_eq!(hm.state(1), BreakerState::Closed);
        assert_eq!(hm.health(1).recoveries, 1);
    }

    #[test]
    fn rejoin_is_a_noop_when_not_dead() {
        let mut hm = HealthMonitor::new(1);
        hm.rejoin(0);
        assert_eq!(hm.state(0), BreakerState::Closed);
    }

    #[test]
    fn activity_resets_failure_streak() {
        let mut hm = HealthMonitor::new(1);
        hm.note_failure(0);
        hm.note_failure(0);
        hm.note_activity(0, Picos::from_nanos(5));
        assert_eq!(hm.health(0).consecutive_failures, 0);
        assert_eq!(hm.health(0).last_activity, Picos::from_nanos(5));
        // Out-of-order activity cannot move last_activity backwards.
        hm.note_activity(0, Picos::from_nanos(3));
        assert_eq!(hm.health(0).last_activity, Picos::from_nanos(5));
    }
}
