//! Migration descriptors (§IV-B): the 128-byte records DMA'd across
//! PCIe as single bursts.

use crate::services::desc_layout as L;
use std::fmt;

/// The four descriptor kinds of Fig. 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DescKind {
    /// Host calls an NxP function.
    HostToNxpCall = 1,
    /// NxP calls a host function.
    NxpToHostCall = 2,
    /// Host function finished; value returns to the NxP.
    HostToNxpReturn = 3,
    /// NxP function finished; value returns to the host.
    NxpToHostReturn = 4,
}

impl DescKind {
    /// Wire tag.
    pub fn tag(self) -> u64 {
        self as u64
    }

    /// Parses a wire tag.
    pub fn from_tag(t: u64) -> Option<DescKind> {
        match t {
            1 => Some(DescKind::HostToNxpCall),
            2 => Some(DescKind::NxpToHostCall),
            3 => Some(DescKind::HostToNxpReturn),
            4 => Some(DescKind::NxpToHostReturn),
            _ => None,
        }
    }

    /// True for the two call kinds.
    pub fn is_call(self) -> bool {
        matches!(self, DescKind::HostToNxpCall | DescKind::NxpToHostCall)
    }

    /// Short trace label.
    pub fn label(self) -> &'static str {
        match self {
            DescKind::HostToNxpCall => "h2n-call",
            DescKind::NxpToHostCall => "n2h-call",
            DescKind::HostToNxpReturn => "h2n-ret",
            DescKind::NxpToHostReturn => "n2h-ret",
        }
    }
}

impl fmt::Display for DescKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Why a received descriptor was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DescError {
    /// Buffer shorter than the 128-byte wire size.
    TooShort,
    /// The checksum did not cover the payload — the burst was damaged
    /// in flight. Carries the stored and recomputed values.
    BadChecksum {
        /// Checksum carried on the wire.
        stored: u64,
        /// Checksum recomputed from the payload.
        computed: u64,
    },
    /// The kind tag is not one of the four descriptor kinds.
    BadKind(u64),
}

impl fmt::Display for DescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescError::TooShort => write!(f, "descriptor buffer too short"),
            DescError::BadChecksum { stored, computed } => write!(
                f,
                "descriptor checksum mismatch (wire {stored:#x}, computed {computed:#x})"
            ),
            DescError::BadKind(t) => write!(f, "unknown descriptor kind tag {t}"),
        }
    }
}

impl std::error::Error for DescError {}

/// FNV-1a-64 over `bytes`, skipping the 8-byte checksum field itself.
/// Any single corrupted byte changes the digest (each step is injective
/// in the running hash), which is the property the DMA recovery path
/// needs; this models the link-layer CRC real PCIe provides for free.
fn fnv1a_except_crc(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for (i, b) in bytes.iter().enumerate() {
        if (L::CRC as usize..L::CRC as usize + 8).contains(&i) {
            continue;
        }
        h = (h ^ *b as u64).wrapping_mul(PRIME);
    }
    h
}

/// One migration descriptor.
///
/// Carries everything §IV-B1 lists: target address, the argument
/// registers, the return value (for return kinds), the PID used to wake
/// the right thread, the CR3/PTBR so the NxP walks the same page
/// tables, and the thread's NxP stack pointer. On top of the paper's
/// fields the wire format carries a per-direction sequence number (so
/// receivers can discard retransmitted duplicates) and a checksum (so
/// corrupted bursts are detected and NAKed instead of trusted).
///
/// # Examples
///
/// ```
/// use flick::{DescKind, MigrationDescriptor};
///
/// let d = MigrationDescriptor {
///     kind: DescKind::HostToNxpCall,
///     target: 0x40_2000,
///     ret: 0,
///     args: [1, 2, 3, 4, 5, 6],
///     pid: 9,
///     cr3: 0x1000,
///     nxp_sp: 0x6000_0000_fff0,
///     seq: 1,
///     span: 1,
/// };
/// let bytes = d.to_bytes();
/// assert_eq!(bytes.len(), 128);
/// assert_eq!(MigrationDescriptor::from_bytes(&bytes).unwrap(), d);
/// assert_eq!(MigrationDescriptor::from_bytes_checked(&bytes), Ok(d));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationDescriptor {
    /// Kind tag.
    pub kind: DescKind,
    /// Target function VA (call kinds).
    pub target: u64,
    /// Return value (return kinds).
    pub ret: u64,
    /// The six argument registers `a0`–`a5`, verbatim.
    pub args: [u64; 6],
    /// Thread id.
    pub pid: u64,
    /// Page-table base register value.
    pub cr3: u64,
    /// NxP stack pointer for this thread.
    pub nxp_sp: u64,
    /// Per-direction sequence number (unchanged across retransmits).
    pub seq: u64,
    /// Observability span id attributing both sides' lifecycle marks to
    /// one migration. Assigned deterministically whether or not span
    /// recording is enabled, so observability never changes wire bytes.
    pub span: u64,
}

impl MigrationDescriptor {
    /// Serialises to the 128-byte wire format, checksum included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = vec![0u8; L::SIZE as usize];
        let put = |b: &mut Vec<u8>, at: u64, v: u64| {
            b[at as usize..at as usize + 8].copy_from_slice(&v.to_le_bytes());
        };
        put(&mut b, L::KIND, self.kind.tag());
        put(&mut b, L::TARGET, self.target);
        put(&mut b, L::RET, self.ret);
        for (i, a) in self.args.iter().enumerate() {
            put(&mut b, L::ARGS + 8 * i as u64, *a);
        }
        put(&mut b, L::PID, self.pid);
        put(&mut b, L::CR3, self.cr3);
        put(&mut b, L::NXP_SP, self.nxp_sp);
        put(&mut b, L::SEQ, self.seq);
        put(&mut b, L::SPAN, self.span);
        let crc = fnv1a_except_crc(&b);
        put(&mut b, L::CRC, crc);
        b
    }

    /// Parses the wire format without verifying the checksum (trusting
    /// local, non-DMA copies such as the process descriptor page).
    ///
    /// Returns `None` for short buffers or unknown kind tags.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < L::SIZE as usize {
            return None;
        }
        let get = |at: u64| u64::from_le_bytes(b[at as usize..at as usize + 8].try_into().unwrap());
        let kind = DescKind::from_tag(get(L::KIND))?;
        let mut args = [0u64; 6];
        for (i, a) in args.iter_mut().enumerate() {
            *a = get(L::ARGS + 8 * i as u64);
        }
        Some(MigrationDescriptor {
            kind,
            target: get(L::TARGET),
            ret: get(L::RET),
            args,
            pid: get(L::PID),
            cr3: get(L::CR3),
            nxp_sp: get(L::NXP_SP),
            seq: get(L::SEQ),
            span: get(L::SPAN),
        })
    }

    /// Parses and *verifies* the wire format — the entry point for
    /// bytes that crossed the link. Checksum is verified before the
    /// kind tag so a corrupted tag reports as corruption, not protocol
    /// breakage.
    ///
    /// # Errors
    ///
    /// [`DescError::TooShort`] for truncated buffers,
    /// [`DescError::BadChecksum`] for in-flight corruption, and
    /// [`DescError::BadKind`] for a clean buffer with an invalid tag.
    pub fn from_bytes_checked(b: &[u8]) -> Result<Self, DescError> {
        if b.len() < L::SIZE as usize {
            return Err(DescError::TooShort);
        }
        let get = |at: u64| u64::from_le_bytes(b[at as usize..at as usize + 8].try_into().unwrap());
        let stored = get(L::CRC);
        let computed = fnv1a_except_crc(&b[..L::SIZE as usize]);
        if stored != computed {
            return Err(DescError::BadChecksum { stored, computed });
        }
        let tag = get(L::KIND);
        Self::from_bytes(b).ok_or(DescError::BadKind(tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: DescKind) -> MigrationDescriptor {
        MigrationDescriptor {
            kind,
            target: 0xDEAD_0000,
            ret: 0xFEED,
            args: [10, 11, 12, 13, 14, 15],
            pid: 3,
            cr3: 0x7000,
            nxp_sp: 0x6000_0001_0000,
            seq: 42,
            span: 7,
        }
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in [
            DescKind::HostToNxpCall,
            DescKind::NxpToHostCall,
            DescKind::HostToNxpReturn,
            DescKind::NxpToHostReturn,
        ] {
            let d = sample(kind);
            assert_eq!(MigrationDescriptor::from_bytes(&d.to_bytes()), Some(d));
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut b = sample(DescKind::HostToNxpCall).to_bytes();
        b[0] = 99;
        assert_eq!(MigrationDescriptor::from_bytes(&b), None);
    }

    #[test]
    fn short_buffer_rejected() {
        let b = sample(DescKind::HostToNxpCall).to_bytes();
        assert_eq!(MigrationDescriptor::from_bytes(&b[..100]), None);
    }

    #[test]
    fn checked_parse_accepts_clean_wire_bytes() {
        let d = sample(DescKind::NxpToHostReturn);
        assert_eq!(MigrationDescriptor::from_bytes_checked(&d.to_bytes()), Ok(d));
    }

    #[test]
    fn checked_parse_rejects_flipped_byte_anywhere() {
        let d = sample(DescKind::HostToNxpCall);
        let clean = d.to_bytes();
        for i in 0..clean.len() {
            let mut b = clean.clone();
            b[i] ^= 0x40;
            assert!(
                matches!(
                    MigrationDescriptor::from_bytes_checked(&b),
                    Err(DescError::BadChecksum { .. })
                ),
                "flip at byte {i} not caught"
            );
        }
    }

    #[test]
    fn checked_parse_reports_short_buffer() {
        let b = sample(DescKind::HostToNxpCall).to_bytes();
        assert_eq!(
            MigrationDescriptor::from_bytes_checked(&b[..64]),
            Err(DescError::TooShort)
        );
    }

    #[test]
    fn seq_survives_round_trip_and_is_covered_by_crc() {
        let mut d = sample(DescKind::HostToNxpCall);
        d.seq = 0x0123_4567_89AB_CDEF;
        let b = d.to_bytes();
        assert_eq!(MigrationDescriptor::from_bytes_checked(&b).unwrap().seq, d.seq);
        // A different seq must change the checksum.
        let mut d2 = d;
        d2.seq += 1;
        let b2 = d2.to_bytes();
        assert_ne!(b[104..112], b2[104..112], "CRC must cover SEQ");
    }

    #[test]
    fn span_survives_round_trip_and_is_covered_by_crc() {
        use crate::services::desc_layout as L;
        let mut d = sample(DescKind::NxpToHostCall);
        d.span = 0xAB54_A98C_EB1F_0AD2;
        let b = d.to_bytes();
        assert_eq!(
            MigrationDescriptor::from_bytes_checked(&b).unwrap().span,
            d.span
        );
        // A different span id must change the checksum: the id rides in
        // formerly-reserved padding but is link-protected like any field.
        let mut d2 = d;
        d2.span += 1;
        let b2 = d2.to_bytes();
        let crc = L::CRC as usize;
        assert_ne!(b[crc..crc + 8], b2[crc..crc + 8], "CRC must cover SPAN");
    }

    #[test]
    fn kind_properties() {
        assert!(DescKind::HostToNxpCall.is_call());
        assert!(!DescKind::NxpToHostReturn.is_call());
        assert_eq!(DescKind::NxpToHostCall.to_string(), "n2h-call");
    }
}
