//! The machine: N host cores × M NxP cores + PCIe fabric + interrupt
//! controller + kernel + NxP runtime, and the complete bidirectional
//! migration event loop of Fig. 2.
//!
//! The fleet is driven by a deterministic discrete-event interleave:
//! each scheduling turn goes to the eligible host core whose clock is
//! globally earliest (ties toward the lowest core index), so any
//! topology — including the paper's 1×1 pair — replays bit-identically
//! run after run.

use crate::descriptor::{DescKind, MigrationDescriptor};
use crate::handlers;
use crate::health::{BreakerState, HealthMonitor};
use crate::leg;
use crate::nxp::{NxpRuntime, NxpTiming};
use crate::services::{self as svc, desc_layout as L};
use crate::serving::{ServingCompletion, ServingCtx, ServingReport, ServingRequest};
use crate::topology::{NxpPlacement, Topology};
use flick_cpu::{ChainCounters, Core, CoreConfig, Exception, InstFaultKind, MemEnv, StopReason};
use flick_isa::{abi, IsaId};
use flick_mem::{PhysAddr, PhysMem, VirtAddr};
use flick_os::{Kernel, KernelError, LoadError, OsTiming, RunQueues};
use flick_pcie::{InterruptController, Msi, PcieFabric};
use flick_sim::fault::BurstPerturbation;
use flick_sim::trace::Side;
use flick_sim::{
    CoreId, DeviceFaultKind, Event, FaultCounts, FaultPlan, MsiFate, Picos, Span, SpanRecorder,
    SpanStage, Stats, Trace, TraceConfig,
};
use flick_toolchain::{layout, MultiIsaImage, ProgramBuilder};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Instructions per scheduling quantum (~20 µs at host speed).
const QUANTUM: u64 = 50_000;

/// Why a run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// Loading the program failed.
    Load(LoadError),
    /// A kernel API was asked about a task that does not exist (or an
    /// equally impossible task-state transition). Reachable by driving
    /// the machine with a PID that was never loaded; previously this
    /// was a library panic.
    Kernel(KernelError),
    /// Building the program failed.
    Build(String),
    /// A core took an unrecoverable exception.
    Crash {
        /// Which side crashed.
        side: Side,
        /// The exception.
        exception: Exception,
    },
    /// An `ecall` used an unknown service number.
    UnknownService {
        /// Which side issued it.
        side: Side,
        /// The service number.
        service: u16,
    },
    /// The instruction budget ran out.
    FuelExhausted,
    /// The migration protocol reached a state its invariants forbid
    /// (e.g. the migrate `ioctl` issued without a saved fault target).
    /// Reachable by hand-written guest code that calls the Flick
    /// services outside the handler protocol.
    Protocol {
        /// Which side broke the protocol.
        side: Side,
        /// What was violated.
        context: &'static str,
    },
    /// Descriptor delivery kept failing past the bounded retransmission
    /// budget and the failure was not recoverable by degradation (a
    /// lost *return* leg cannot be re-run without doubling the remote
    /// call's side effects).
    LinkDead {
        /// The thread whose migration was lost.
        pid: u64,
        /// Which leg of the protocol gave up.
        stage: &'static str,
    },
    /// Every host core went idle with no queued task and no pending
    /// wake-up, yet some processes never finished — they can never run
    /// again (e.g. they were abandoned mid-migration by an earlier
    /// aborted run).
    Deadlock {
        /// The pids that never completed.
        stuck: Vec<u64>,
    },
    /// A parallel-host leg worker thread died (panicked mid-leg or
    /// exited early). The leg's core and private memory went down with
    /// it, so the run cannot continue — but the failure surfaces as an
    /// error the caller can report instead of aborting the process.
    WorkerDied {
        /// Index of the dead worker thread.
        worker: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Load(e) => write!(f, "load error: {e}"),
            RunError::Kernel(e) => write!(f, "kernel error: {e}"),
            RunError::Build(e) => write!(f, "build error: {e}"),
            RunError::Crash { side, exception } => write!(f, "{side} crashed: {exception}"),
            RunError::UnknownService { side, service } => {
                write!(f, "{side} used unknown service {service:#x}")
            }
            RunError::FuelExhausted => write!(f, "instruction budget exhausted"),
            RunError::Protocol { side, context } => {
                write!(f, "{side} migration protocol violation: {context}")
            }
            RunError::LinkDead { pid, stage } => {
                write!(f, "PCIe link dead for pid {pid} during {stage}")
            }
            RunError::Deadlock { stuck } => {
                write!(
                    f,
                    "scheduler deadlock: no runnable task or pending wake-up; \
                     stuck pids {stuck:?}"
                )
            }
            RunError::WorkerDied { worker } => {
                write!(f, "leg worker thread {worker} died")
            }
        }
    }
}

impl Error for RunError {}

impl From<LoadError> for RunError {
    fn from(e: LoadError) -> Self {
        RunError::Load(e)
    }
}

impl From<KernelError> for RunError {
    fn from(e: KernelError) -> Self {
        RunError::Kernel(e)
    }
}

/// The result of running a process to completion.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Value passed to `flick_exit`.
    pub exit_code: u64,
    /// Host wall-clock simulated time at exit.
    pub sim_time: Picos,
    /// Console lines printed by the program.
    pub console: Vec<String>,
    /// Counters (migrations, faults, instructions, …). These are
    /// **machine-lifetime cumulative** values snapshotted at exit, not
    /// per-process deltas: running several processes on one machine
    /// accumulates into the same counters.
    pub stats: Stats,
}

/// Handler addresses for one loaded process.
///
/// The accelerator handlers are kept per ISA: `accel[isa.tag()]` holds
/// the `(entry, loop)` pair of that ISA's migration handler, or `None`
/// when the image was linked without functions of that ISA. The host
/// ISA's slot is always `None` — host-side migration goes through
/// `host_handler`.
#[derive(Clone, Copy, Debug)]
struct ProcessVas {
    host_handler: VirtAddr,
    accel: [Option<(VirtAddr, VirtAddr)>; flick_isa::IsaId::COUNT],
}

impl ProcessVas {
    /// `(entry, loop)` of the migration handler for accelerator `isa`.
    fn accel_handlers(&self, isa: IsaId) -> Option<(VirtAddr, VirtAddr)> {
        self.accel[isa.tag() as usize]
    }
}

/// Maps a PTE ISA tag (stored as `tag + 1`; `0` = untagged) to the
/// accelerator ISA it names. Untagged and non-accelerator tags resolve
/// by **best fit** over the machine's accelerator fleet (see
/// [`best_fit_accel_isa`]) instead of hard-defaulting to rv64 — on a
/// fleet with no rv64 slot the old default would bounce every untagged
/// call through the wrong-ISA fallback path.
fn isa_from_tag(tag: u8, fleet: &[IsaId]) -> IsaId {
    match tag {
        0 => best_fit_accel_isa(fleet),
        t => IsaId::from_tag(t - 1)
            .filter(|g| g.descriptor().nx_text)
            .unwrap_or_else(|| best_fit_accel_isa(fleet)),
    }
}

/// The accelerator ISA an *untagged* call target should land on: the
/// fleet's best single-thread performance point, scored from the ISA
/// descriptors as nominal clock over ALU CPI (compared exactly by
/// cross-multiplication, no float rounding). Ties break toward the
/// lower ISA tag and the result ignores slot order, so placement is
/// deterministic for any fleet spec permutation. Non-accelerator
/// (host-encoding) entries are skipped; an empty or all-host fleet
/// keeps the classic two-ISA machine's rv64 default.
pub fn best_fit_accel_isa(fleet: &[IsaId]) -> IsaId {
    let mut best: Option<IsaId> = None;
    for &isa in fleet {
        if !isa.descriptor().nx_text {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) if b == isa => false,
            Some(b) => {
                let (d, e) = (isa.descriptor(), b.descriptor());
                let (s, t) = (d.clock_khz * e.cpi.alu, e.clock_khz * d.cpi.alu);
                s > t || (s == t && isa.tag() < b.tag())
            }
        };
        if better {
            best = Some(isa);
        }
    }
    best.unwrap_or(IsaId::Rv64)
}

/// How a suspended thread expects to be woken.
#[derive(Clone, Copy, Debug)]
struct PendingWake {
    /// Arrival time of the wake-up MSI, or `None` when the interrupt
    /// (or its whole payload burst) was lost in flight — the watchdog
    /// deadline in the `task_struct` then drives recovery.
    msi_at: Option<Picos>,
    /// The descriptor channel (= NxP index = MSI vector) the wake-up
    /// travels on.
    chan: usize,
    /// The channel incarnation the reply was sent under. A failover
    /// rejoin resets the channel; a wake stamped with an older
    /// incarnation belongs to a dead device and must be re-executed,
    /// not retransmitted, even though the rejoined device reads
    /// healthy.
    incarnation: u64,
}

/// Per-channel descriptor protocol state: independent sequence spaces
/// per NxP, exactly as each device pair would keep on real hardware.
#[derive(Clone, Debug)]
struct ChannelSeqs {
    /// Next host→NxP descriptor sequence number.
    h2n: u64,
    /// Next NxP→host descriptor sequence number.
    n2h: u64,
    /// Highest host→NxP sequence the NxP has accepted. A high-water
    /// mark suffices on this direction: allocation and pickup happen
    /// atomically within one delivery loop, so accepts are in order.
    nxp_last: u64,
    /// Every NxP→host sequence `<= host_floor` has been accepted this
    /// channel incarnation.
    host_floor: u64,
    /// Accepted NxP→host sequences beyond `host_floor`. An exact set,
    /// not a high-water mark: failover stalls can reorder wake
    /// delivery across threads sharing the channel, and a lower-seq
    /// reply accepted late must not be mistaken for a retransmit
    /// duplicate. Contiguous prefixes fold back into the floor, so the
    /// set stays at the size of the reorder window, not the run.
    host_accepted: std::collections::BTreeSet<u64>,
    /// Bumped every time a failover rejoin resets this channel: both
    /// sequence spaces restart, so protocol state stamped with an
    /// older incarnation is meaningless against the new device.
    incarnation: u64,
}

impl Default for ChannelSeqs {
    fn default() -> Self {
        ChannelSeqs {
            h2n: 1,
            n2h: 1,
            nxp_last: 0,
            host_floor: 0,
            host_accepted: std::collections::BTreeSet::new(),
            incarnation: 0,
        }
    }
}

impl ChannelSeqs {
    /// Has the host already accepted NxP→host sequence `seq` this
    /// incarnation?
    fn host_has_accepted(&self, seq: u64) -> bool {
        seq <= self.host_floor || self.host_accepted.contains(&seq)
    }

    /// Records an accepted NxP→host sequence, folding any
    /// now-contiguous prefix into the floor.
    fn host_mark_accepted(&mut self, seq: u64) {
        if seq <= self.host_floor {
            return;
        }
        self.host_accepted.insert(seq);
        while self.host_accepted.remove(&(self.host_floor + 1)) {
            self.host_floor += 1;
        }
    }
}

/// What one host core currently holds between scheduling turns.
#[derive(Clone, Copy, Debug, Default)]
struct CoreSlot {
    /// Task whose live context is on the core (its quantum expired
    /// with nothing due, so it keeps running next turn).
    running: Option<u64>,
    /// Task preempted by a due wake-up, to re-queue behind the
    /// freshly woken ones.
    preempted: Option<u64>,
}

/// What a host `ecall` did to the control flow.
enum EcallFlow {
    /// Resume the same thread.
    Continue,
    /// The process exited with this code.
    Exit(u64),
    /// The thread suspended for migration; an MSI or the watchdog wakes
    /// it later.
    Suspended(PendingWake),
    /// The thread was made runnable again immediately with a modified
    /// context (graceful degradation unwound the migration); reinstall
    /// it and keep running.
    Resume,
    /// The thread suspended for migration and its NxP leg was handed
    /// to a worker thread (pipelined mode); the wake surfaces via
    /// `ready_wakes` when the leg joins.
    Dispatched,
}

/// Outcome of one NxP pickup attempt of a host→NxP burst.
enum Pickup {
    /// Clean, in-order descriptor: run the NxP leg.
    Accept(Vec<u8>, MigrationDescriptor),
    /// Checksum rejected — the NxP NAKs and the host must retransmit.
    Corrupt,
    /// Sequence number already accepted (stale retransmit): discarded.
    Duplicate,
    /// The device is crashed, hung or unplugged: its scheduler never
    /// polls the status register, so the burst sits unclaimed and the
    /// device clock does not move. Unlike [`Pickup::Corrupt`] no NAK
    /// crosses the link — the host only notices by timeout.
    Dead,
}

/// Outcome of one host-side attempt to accept the n2h descriptor.
enum HostAccept {
    /// Descriptor accepted; the thread is runnable again. Carries the
    /// accepted sequence number.
    Woken(u64),
    /// Nothing (new) in the host ring yet.
    Empty,
    /// A corrupted burst was drained and NAKed; retransmission needed.
    Corrupt,
}

/// Builder for a [`Machine`] with custom timing/trace configuration.
#[derive(Debug, Default)]
pub struct MachineBuilder {
    os_timing: Option<OsTiming>,
    nxp_timing: Option<NxpTiming>,
    trace: Option<TraceConfig>,
    host_cfg: Option<CoreConfig>,
    nxp_cfg: Option<CoreConfig>,
    latency: Option<flick_mem::LatencyModel>,
    kernel_cfg: Option<flick_os::KernelConfig>,
    fault_plan: Option<FaultPlan>,
    fast_path: Option<bool>,
    topology: Option<Topology>,
    nxp_placement: Option<NxpPlacement>,
    observability: Option<bool>,
    threads: Option<usize>,
    nxp_isas: Option<Vec<IsaId>>,
    ring_occupancy: Option<bool>,
}

impl MachineBuilder {
    /// Overrides the kernel path timing.
    pub fn os_timing(mut self, t: OsTiming) -> Self {
        self.os_timing = Some(t);
        self
    }

    /// Overrides the NxP runtime timing.
    pub fn nxp_timing(mut self, t: NxpTiming) -> Self {
        self.nxp_timing = Some(t);
        self
    }

    /// Overrides trace recording.
    pub fn trace(mut self, t: TraceConfig) -> Self {
        self.trace = Some(t);
        self
    }

    /// Overrides the host core configuration.
    pub fn host_core(mut self, c: CoreConfig) -> Self {
        self.host_cfg = Some(c);
        self
    }

    /// Overrides the NxP core configuration.
    pub fn nxp_core(mut self, c: CoreConfig) -> Self {
        self.nxp_cfg = Some(c);
        self
    }

    /// Overrides the memory latency model (ablations: descriptor
    /// transfer over MMIO instead of burst DMA, slower links, …).
    pub fn latency_model(mut self, lat: flick_mem::LatencyModel) -> Self {
        self.latency = Some(lat);
        self
    }

    /// Overrides kernel configuration (hugepage granularity of the NxP
    /// window, stack placement ablation).
    pub fn kernel_config(mut self, cfg: flick_os::KernelConfig) -> Self {
        self.kernel_cfg = Some(cfg);
        self
    }

    /// Installs a seeded fault-injection plan for the PCIe/DMA/MSI
    /// paths. The default is [`FaultPlan::none`], which draws no random
    /// numbers and perturbs nothing.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Toggles the host-side decoded-instruction fast path on every
    /// core (host, NxP, and the degraded-mode emulator). On by default;
    /// the differential tests switch it off to prove simulated clocks,
    /// stats, and traces are bit-identical either way. Overrides any
    /// `fast_path` already present in custom core configurations.
    pub fn fast_path(mut self, enabled: bool) -> Self {
        self.fast_path = Some(enabled);
        self
    }

    /// Configures the machine as `topology.host_cores` symmetric host
    /// cores × `topology.nxp_cores` NxPs, each NxP behind its own
    /// descriptor channel. The default is the paper's 1×1 pair.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = Some(t);
        self
    }

    /// Picks the placement policy for fresh host→NxP calls. The
    /// default is [`NxpPlacement::RoundRobin`].
    pub fn nxp_placement(mut self, p: NxpPlacement) -> Self {
        self.nxp_placement = Some(p);
        self
    }

    /// Assigns an ISA to each NxP slot, making the fleet heterogeneous
    /// beyond the classic all-rv64 accelerator pool. Slot `i` runs
    /// `isas[i]`; slots past the end of the list default to
    /// [`IsaId::Rv64`]. Every listed ISA must be an accelerator ISA
    /// (descriptor `nx_text` set). A custom [`MachineBuilder::nxp_core`]
    /// configuration applies to the rv64 slots only; other ISAs derive
    /// their configuration from the descriptor via
    /// [`CoreConfig::accel`].
    pub fn nxp_isas(mut self, isas: Vec<IsaId>) -> Self {
        self.nxp_isas = Some(isas);
        self
    }

    /// Enables the migration observability layer: a lifecycle
    /// [`Span`] per cross-ISA call (NX fault → descriptor pack → DMA
    /// submit → NxP dispatch → return submit → MSI → wake), per-segment
    /// latency histograms and per-NxP queue-depth gauges folded into
    /// [`Outcome::stats`], all exportable as a Perfetto/Chrome trace.
    ///
    /// Off by default and provably inert: span ids are assigned and
    /// carried in descriptors either way, marks never advance a clock,
    /// so enabling this changes neither simulated time nor counters nor
    /// the event trace (the differential tests pin this down).
    pub fn observability(mut self, enabled: bool) -> Self {
        self.observability = Some(enabled);
        self
    }

    /// Enables simulated-time ring-occupancy admission control. The
    /// stock admission check reads the channel's *wall* ring depth,
    /// which only fills when a device stops draining — under pure
    /// overload the NxP drains each burst before the next kick, so the
    /// doorbell never says no even as device clocks run minutes behind
    /// offered load. With this knob on, the host driver also counts
    /// kicks whose *simulated* pickup instant is still in the doorbell
    /// write's future — the slots a real ring would have occupied — and
    /// rejects at [`flick_os::RetryPolicy::ring_capacity`] just like a
    /// wall-full ring: same `admission_rejects` counter, same
    /// [`Event::AdmissionRejected`], same bounded backoff-and-degrade
    /// budget. Off by default (bit-inert: no occupancy is recorded).
    pub fn ring_occupancy_admission(mut self, enabled: bool) -> Self {
        self.ring_occupancy = Some(enabled);
        self
    }

    /// Number of OS worker threads for NxP leg execution. `1` (the
    /// default) keeps the fully sequential engine; `0` means "auto" —
    /// one worker per available host hardware thread. Any value keeps
    /// the simulated timeline bit-identical: parallelism only changes
    /// which *host* thread interprets an NxP leg, never when the leg
    /// happens on the simulated clock.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        let mut env = MemEnv::paper_default();
        if let Some(lat) = self.latency {
            env.latency = lat;
        }
        let mem = PhysMem::new();
        let mut kcfg = self.kernel_cfg.unwrap_or_default();
        if let Some(t) = self.os_timing {
            kcfg.timing = t;
        }
        let kernel = Kernel::with_config(env.map.clone(), kcfg);
        let mut host_cfg = self.host_cfg.unwrap_or_else(CoreConfig::host);
        let mut nxp_cfg = self.nxp_cfg.unwrap_or_else(CoreConfig::nxp);
        if let Some(fp) = self.fast_path {
            host_cfg.fast_path = fp;
            nxp_cfg.fast_path = fp;
        }
        let topology = self.topology.unwrap_or_default();
        let threads = match self.threads {
            None => 1,
            Some(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(n) => n,
        };
        let listed = self.nxp_isas.unwrap_or_default();
        let nxp_isas: Vec<IsaId> = (0..topology.nxp_cores)
            .map(|i| listed.get(i).copied().unwrap_or(IsaId::Rv64))
            .collect();
        let nxp_cfgs: Vec<CoreConfig> = nxp_isas
            .iter()
            .map(|&isa| {
                if isa == IsaId::Rv64 {
                    nxp_cfg.clone()
                } else {
                    let mut c = CoreConfig::accel(isa);
                    if let Some(fp) = self.fast_path {
                        c.fast_path = fp;
                    }
                    c
                }
            })
            .collect();
        Machine {
            hosts: (0..topology.host_cores)
                .map(|_| Core::new(host_cfg.clone()))
                .collect(),
            nxps: nxp_cfgs.iter().map(|c| Core::new(c.clone())).collect(),
            nxp_isas,
            fabric: PcieFabric::new(env.latency.clone(), topology.nxp_cores),
            irq: InterruptController::new(),
            kernel,
            nxp_rt: NxpRuntime::new(),
            nxp_timing: self.nxp_timing.unwrap_or_else(NxpTiming::paper_default),
            trace: Trace::new(self.trace.unwrap_or_default()),
            stats: Stats::default(),
            vas: HashMap::new(),
            symbols: HashMap::new(),
            plan: self.fault_plan.unwrap_or_else(FaultPlan::none),
            emus: (0..topology.host_cores).map(|_| None).collect(),
            chans: vec![ChannelSeqs::default(); topology.nxp_cores],
            retained_n2h: HashMap::new(),
            retained_h2n: HashMap::new(),
            health: HealthMonitor::new(topology.nxp_cores),
            nxp_of: HashMap::new(),
            placement: self.nxp_placement.unwrap_or_default(),
            rr_next: 0,
            obs: SpanRecorder::new(self.observability.unwrap_or(false)),
            obs_stats: Stats::default(),
            next_span: 1,
            span_of: HashMap::new(),
            last_nx_fault: HashMap::new(),
            retired: 0,
            threads,
            par: None,
            pipelined: false,
            spares: (0..topology.nxp_cores).map(|_| None).collect(),
            in_flight: HashMap::new(),
            parked: HashMap::new(),
            ready_wakes: Vec::new(),
            par_counter_offset: 0,
            next_leg_id: 0,
            kill_next_leg: false,
            serving: None,
            ring_occupancy: if self.ring_occupancy.unwrap_or(false) {
                Some((0..topology.nxp_cores).map(|_| VecDeque::new()).collect())
            } else {
                None
            },
            topology,
            mem,
            env,
        }
    }
}

/// The heterogeneous-ISA machine of Table I: a 2.4 GHz x64-like host
/// core and a 200 MHz rv64-like NxP core behind PCIe 3.0, sharing one
/// unified physical and virtual memory space.
pub struct Machine {
    mem: PhysMem,
    env: MemEnv,
    topology: Topology,
    hosts: Vec<Core>,
    nxps: Vec<Core>,
    /// ISA of each NxP slot, in slot order (stable across detach /
    /// spare swaps and failover rejoins).
    nxp_isas: Vec<IsaId>,
    fabric: PcieFabric,
    irq: InterruptController,
    kernel: Kernel,
    nxp_rt: NxpRuntime,
    nxp_timing: NxpTiming,
    trace: Trace,
    stats: Stats,
    vas: HashMap<u64, ProcessVas>,
    symbols: HashMap<u64, std::collections::BTreeMap<String, u64>>,
    /// Seeded fault injection for the interconnect (inactive by
    /// default).
    plan: FaultPlan,
    /// Lazily created per-host-core interpreter cores for degraded
    /// threads.
    emus: Vec<Option<Core>>,
    /// Per-channel sequence-number state (one entry per NxP).
    chans: Vec<ChannelSeqs>,
    /// Channel and wire bytes of each thread's in-flight NxP→host
    /// descriptor, retained until acceptance so the host can demand
    /// retransmission.
    retained_n2h: HashMap<u64, (usize, Vec<u8>)>,
    /// Channel and wire bytes of each thread's most recent host→NxP
    /// descriptor, retained by the host driver until the round trip
    /// completes. When an NxP dies mid-round-trip its device-side state
    /// (including the retained NxP→host bytes) dies with it, and this
    /// copy is what failover re-executes on a surviving NxP.
    retained_h2n: HashMap<u64, (usize, Vec<u8>)>,
    /// Per-NxP liveness and circuit-breaker state, driven purely by
    /// *observed* delivery failures/successes on the deterministic
    /// timeline — never by peeking at the fault schedule.
    health: HealthMonitor,
    /// Which NxPs hold each thread's accelerator continuations,
    /// outermost first: return legs always follow the thread back to
    /// the innermost (last) entry. Depth exceeds one only when a
    /// cross-accelerator call bounces through the host while an outer
    /// frame stays parked on its own NxP.
    nxp_of: HashMap<u64, Vec<usize>>,
    /// Placement policy for fresh host→NxP calls.
    placement: NxpPlacement,
    /// Round-robin cursor for [`NxpPlacement::RoundRobin`].
    rr_next: usize,
    /// Migration lifecycle spans (inert unless enabled at build time).
    obs: SpanRecorder,
    /// Histograms and gauges recorded by the observability layer, kept
    /// apart from the machine counters and merged into
    /// [`Outcome::stats`] at exit so the counter map is untouched.
    obs_stats: Stats,
    /// Next span id. Always advanced — span ids ride in descriptor
    /// wire bytes whether or not recording is on, which is what makes
    /// the observability toggle bit-inert.
    next_span: u64,
    /// Span id of each thread's current suspension round trip.
    span_of: HashMap<u64, u64>,
    /// Time and host core of each thread's latest NX fault, stashed so
    /// the span that opens at the migrate `ioctl` can backdate its
    /// first mark to the trigger.
    last_nx_fault: HashMap<u64, (Picos, usize)>,
    /// Running total of instructions retired across the whole fleet
    /// (hosts, NxPs, emulators). Bumped after every `Core::run` so the
    /// scheduling loop's fuel accounting reads one field instead of
    /// re-summing every core each iteration.
    retired: u64,
    /// Worker-thread count for NxP leg execution (1 = sequential).
    threads: usize,
    /// The worker pool, spawned lazily on the first pipelined run.
    par: Option<leg::ParEngine>,
    /// Whether the *current* run may overlap NxP legs with host
    /// execution. Decided once per event loop: requires `threads > 1`,
    /// effectively unbounded fuel (preemption quanta stay per-call),
    /// and an inert fault plan — chaos and failover runs always take
    /// the serialized engine, whose state evolution is byte-identical
    /// to the original inline one.
    pipelined: bool,
    /// Stand-in cores occupying fleet slots while the real core is out
    /// on a leg; swapped back at join. A spare never executes, so its
    /// clock and counters stay zero.
    spares: Vec<Option<Core>>,
    /// In-flight leg bookkeeping, keyed by channel. The engine keeps at
    /// most one leg in flight per channel — that invariant is what
    /// makes per-channel sequence assignment order-identical to the
    /// sequential engine.
    in_flight: HashMap<usize, InFlightLeg>,
    /// Completed legs received out of join order, parked by leg id.
    parked: HashMap<u64, leg::LegResult>,
    /// Wakes produced by joins, drained into the scheduler's pending
    /// heaps at the next event-loop touchpoint. `(host core, pid, wake)`.
    ready_wakes: Vec<(usize, u64, PendingWake)>,
    /// Instructions already retired by cores currently out on legs —
    /// keeps the `executed()` invariant exact while a core is detached.
    par_counter_offset: u64,
    /// Monotone dispatch counter for legs.
    next_leg_id: u64,
    /// Chaos seam: when set, the next dispatched leg's worker panics
    /// (tests use this to prove worker death surfaces as an error).
    kill_next_leg: bool,
    /// Open-loop serving state while [`Machine::run_serving`] drives
    /// the event loop; `None` in every other mode, which keeps the
    /// closed-loop paths byte-identical to the pre-serving machine.
    serving: Option<ServingCtx>,
    /// Per-channel simulated pickup instants of kicked bursts, used by
    /// the ring-occupancy admission check
    /// ([`MachineBuilder::ring_occupancy_admission`]). `None` = knob
    /// off, nothing recorded.
    ring_occupancy: Option<Vec<VecDeque<Picos>>>,
}

/// Coordinator-side record of one dispatched leg.
struct InFlightLeg {
    /// Matches [`leg::LegResult::leg_id`].
    leg_id: u64,
    /// Host core that dispatched (and will be woken by) the leg.
    hc: usize,
    /// The migrating thread.
    pid: u64,
    /// Instructions the NxP core had retired before it left the fleet.
    pre_insts: u64,
    /// Global text generation at dispatch (sharded-memory mode).
    init_gen: u64,
    /// Global trace length at dispatch: the splice position where this
    /// leg's events belong.
    trace_pos: usize,
    /// Whole-memory (serialized) vs per-process-frames (pipelined).
    whole_mem: bool,
    /// The leg's published NxP clock, polled to decide due joins.
    clock_pub: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("topology", &self.topology)
            .field("host_now", &self.host_now())
            .finish()
    }
}

impl Machine {
    /// A machine with all paper-calibrated defaults.
    pub fn paper_default() -> Self {
        MachineBuilder::default().build()
    }

    /// Starts building a customised machine.
    pub fn builder() -> MachineBuilder {
        MachineBuilder::default()
    }

    /// Loads a pre-built multi-ISA image, returning the new PID.
    ///
    /// The image must contain the Flick runtime (link it with
    /// [`handlers::add_runtime`]).
    ///
    /// # Errors
    ///
    /// Fails when the image lacks the runtime symbols or cannot be
    /// mapped.
    pub fn load(&mut self, image: &MultiIsaImage) -> Result<u64, RunError> {
        let need = |name: &str| {
            image
                .find_symbol(name)
                .map(VirtAddr)
                .ok_or_else(|| RunError::Build(format!("image lacks runtime symbol `{name}`")))
        };
        // Host and classic-NxP handlers are mandatory (every runtime
        // links them); handlers of other accelerator ISAs are optional
        // — present only when the image holds functions of that ISA.
        let mut accel = [None; flick_isa::IsaId::COUNT];
        accel[flick_isa::IsaId::Nxp.tag() as usize] = Some((
            need(handlers::NXP_HANDLER)?,
            need(handlers::NXP_HANDLER_LOOP)?,
        ));
        for d in flick_isa::IsaId::all() {
            if !d.nx_text || d.id == flick_isa::IsaId::Nxp {
                continue;
            }
            let entry = image.find_symbol(&handlers::nxp_handler_symbol(d.id));
            let lp = image.find_symbol(&handlers::nxp_handler_loop_symbol(d.id));
            if let (Some(e), Some(l)) = (entry, lp) {
                accel[d.id.tag() as usize] = Some((VirtAddr(e), VirtAddr(l)));
            }
        }
        let vas = ProcessVas {
            host_handler: need(handlers::HOST_HANDLER)?,
            accel,
        };
        let pid = self.kernel.create_process(&mut self.mem, image)?;
        self.vas.insert(pid, vas);
        self.symbols.insert(pid, image.symbols.clone());
        Ok(pid)
    }

    /// Convenience: injects the Flick runtime into `program`, builds it
    /// and loads it.
    ///
    /// # Errors
    ///
    /// Propagates build and load failures.
    pub fn load_program(&mut self, program: &mut ProgramBuilder) -> Result<u64, RunError> {
        handlers::add_runtime(program);
        let image = program
            .build()
            .map_err(|e| RunError::Build(e.to_string()))?;
        self.load(&image)
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The kernel (console, tasks).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Machine-level statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Per-kind tallies of the faults the plan actually injected.
    pub fn fault_counts(&self) -> FaultCounts {
        self.plan.counts()
    }

    /// Per-NxP health and circuit-breaker state.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Fleet-wide task census: `(live, exited)` pids, each spawned
    /// thread in exactly one of the two lists. The chaos tests assert
    /// this invariant across crash/rejoin schedules — failover must
    /// neither lose a thread nor duplicate one.
    pub fn task_census(&self) -> (Vec<u64>, Vec<u64>) {
        let mut live = Vec::new();
        let mut exited = Vec::new();
        for t in self.kernel.tasks() {
            if t.state == flick_os::TaskState::Zombie {
                exited.push(t.pid);
            } else {
                live.push(t.pid);
            }
        }
        (live, exited)
    }

    /// Completed migration spans in completion order. Empty unless the
    /// machine was built with [`MachineBuilder::observability`].
    pub fn spans(&self) -> &[Span] {
        self.obs.spans()
    }

    /// Whether the migration observability layer is recording.
    pub fn observability_enabled(&self) -> bool {
        self.obs.enabled()
    }

    /// The observability histograms and gauges recorded so far (empty
    /// when observability is off). Also folded into [`Outcome::stats`]
    /// when a process exits.
    pub fn observability_stats(&self) -> &Stats {
        &self.obs_stats
    }

    /// Looks up a linker symbol in the image `pid` was loaded from.
    pub fn symbol(&self, pid: u64, name: &str) -> Option<VirtAddr> {
        self.symbols
            .get(&pid)
            .and_then(|t| t.get(name))
            .map(|&va| VirtAddr(va))
    }

    /// Latest host-core time (the host-side wall clock: with several
    /// cores, the furthest-ahead one).
    pub fn host_now(&self) -> Picos {
        self.hosts
            .iter()
            .map(|c| c.clock().now())
            .max()
            .unwrap_or(Picos::ZERO)
    }

    /// The machine's core topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Per-core statistics snapshots, keyed by [`CoreId`] (host, NxP,
    /// and — for host cores that ran degraded threads — emulator
    /// cores). The aggregate counters in [`Outcome::stats`] are the
    /// sums of these. Format a key with `Display` (`host0`, `nxp1`,
    /// `emu0`) when a label is needed.
    pub fn per_core_stats(&self) -> Vec<(CoreId, Stats)> {
        let mut out = Vec::new();
        for (i, c) in self.hosts.iter().enumerate() {
            out.push((CoreId::host(i), c.stats()));
        }
        for (i, c) in self.nxps.iter().enumerate() {
            out.push((CoreId::nxp(i), c.stats()));
        }
        for (i, c) in self.emus.iter().enumerate() {
            if let Some(c) = c {
                out.push((CoreId::emu(i), c.stats()));
            }
        }
        out
    }

    /// Fleet-wide fold of every core's host-side chain-efficacy
    /// tallies (hits, patches, breaks, fallback steps). Host-only
    /// telemetry: deliberately *not* part of [`stats`](Self::stats) or
    /// [`per_core_stats`](Self::per_core_stats), whose contents the
    /// differential suites compare bit-for-bit across engine configs.
    pub fn chain_stats(&self) -> ChainCounters {
        let mut total = ChainCounters::default();
        let cores = self
            .hosts
            .iter()
            .chain(self.nxps.iter())
            .chain(self.emus.iter().flatten());
        for c in cores {
            let ch = c.chain_counters();
            total.chain_hits += ch.chain_hits;
            total.chain_patches += ch.chain_patches;
            total.chain_breaks += ch.chain_breaks;
            total.block_fallback_steps += ch.block_fallback_steps;
        }
        total
    }

    /// Human label for a core with its ISA name rendered from the
    /// descriptor — `host0 (x64)`, `nxp1 (arm64)`, `emu0 (rv64 on
    /// x64)` — so heterogeneous-fleet timelines and per-core reports
    /// stay readable. Falls back to the bare `Display` form for cores
    /// the machine does not have.
    pub fn core_label(&self, core: CoreId) -> String {
        match core.side {
            Side::Host => match self.hosts.get(core.index) {
                Some(c) => format!("{core} ({})", c.config().isa.name()),
                None => core.to_string(),
            },
            Side::Nxp => match self.nxp_isas.get(core.index) {
                Some(isa) => format!("{core} ({})", isa.name()),
                None => core.to_string(),
            },
            Side::Emu => match self.emus.get(core.index).and_then(|c| c.as_ref()) {
                Some(c) => format!(
                    "{core} ({} on {})",
                    c.config().isa.name(),
                    self.hosts
                        .get(core.index)
                        .map_or("host", |h| h.config().isa.name())
                ),
                None => core.to_string(),
            },
        }
    }

    /// Track namer for [`flick_sim::chrome_trace_named`]: every
    /// Perfetto track carries the core's ISA via [`Machine::core_label`].
    pub fn track_namer(&self) -> impl Fn(Option<CoreId>) -> String + '_ {
        move |core| match core {
            Some(c) => self.core_label(c),
            None => "untagged".to_string(),
        }
    }

    /// Number of OS worker threads used for parallel host execution
    /// (1 = fully sequential in-process execution).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Allocates NxP-DRAM heap for `pid` without charging simulated
    /// time — workload harnesses use this to stage data structures
    /// (linked lists, graphs) before the measured run, the way the
    /// paper's harness prepares the NxP-side storage.
    ///
    /// # Errors
    ///
    /// [`RunError::Load`] when the allocation does not fit the NxP
    /// window or the pid is unknown.
    pub fn stage_alloc_nxp(&mut self, pid: u64, size: u64) -> Result<VirtAddr, RunError> {
        Ok(self.kernel.alloc_nxp_heap(pid, size)?)
    }

    /// Allocates host heap for `pid` without charging simulated time.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures.
    pub fn stage_alloc_host(&mut self, pid: u64, size: u64) -> Result<VirtAddr, RunError> {
        self.kernel
            .alloc_host_heap(&mut self.mem, pid, size)
            .map_err(RunError::Load)
    }

    /// Writes user memory without charging simulated time (staging).
    ///
    /// # Errors
    ///
    /// [`RunError::Load`] when the range touches unmapped memory or the
    /// pid is unknown.
    pub fn stage_write(&mut self, pid: u64, va: VirtAddr, bytes: &[u8]) -> Result<(), RunError> {
        Ok(self.kernel.write_user(&mut self.mem, pid, va, bytes)?)
    }

    /// Reads user memory without charging simulated time (inspection).
    ///
    /// # Errors
    ///
    /// [`RunError::Load`] when the range touches unmapped memory or the
    /// pid is unknown.
    pub fn stage_read(&self, pid: u64, va: VirtAddr, buf: &mut [u8]) -> Result<(), RunError> {
        Ok(self.kernel.read_user(&self.mem, pid, va, buf)?)
    }

    /// Runs process `pid` to completion with a default budget of two
    /// billion instructions.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run(&mut self, pid: u64) -> Result<Outcome, RunError> {
        self.run_with_fuel(pid, 2_000_000_000)
    }

    /// Runs with an explicit instruction budget.
    ///
    /// # Errors
    ///
    /// See [`RunError`]; [`RunError::FuelExhausted`] if the budget runs
    /// out.
    pub fn run_with_fuel(&mut self, pid: u64, fuel: u64) -> Result<Outcome, RunError> {
        // No quantum: a lone process is never preempted, exactly as in
        // the pre-topology single-process loop.
        let mut done = self.run_event_loop(&[pid], fuel, u64::MAX)?;
        let (_, outcome) = done.pop().ok_or(RunError::Protocol {
            side: Side::Host,
            context: "event loop returned no outcome for its only pid",
        })?;
        Ok(outcome)
    }

    /// Runs several processes concurrently across the host cores.
    ///
    /// While one thread is suspended awaiting an NxP, its host core is
    /// free and the scheduler runs another process — the property that
    /// distinguishes Flick's suspend-based migration from busy-wait
    /// offloading. A running thread is preempted when a wake-up
    /// interrupt fires (checked at a timer-tick granularity of ~20 µs
    /// of host time), so NxP-bound threads resume promptly even while a
    /// compute-bound thread occupies a core.
    ///
    /// Returns `(pid, outcome)` pairs in completion order.
    ///
    /// # Errors
    ///
    /// See [`RunError`]. One crashing process fails the whole run.
    pub fn run_concurrent(
        &mut self,
        pids: &[u64],
        fuel: u64,
    ) -> Result<Vec<(u64, Outcome)>, RunError> {
        self.run_event_loop(pids, fuel, QUANTUM)
    }

    /// Pre-allocates `pid`'s NxP SRAM stack slot and records it in the
    /// descriptor-page TCB word, without charging simulated time — the
    /// staging analog of the `ALLOC_NXP_STACK` service. The migration
    /// handler's first-time check then sees a live stack pointer and
    /// skips the allocation `ecall` on the first cross-ISA call.
    ///
    /// Serving setups call this once per tenant: every request task
    /// spawned from the tenant's prototype inherits the slot, so a
    /// fleet of hundreds of tenants uses one SRAM slot each instead of
    /// exhausting the 255-slot SRAM on per-request allocations.
    ///
    /// # Errors
    ///
    /// [`RunError::Load`] when the pid is unknown, the slot was already
    /// allocated, or the SRAM is out of slots.
    pub fn stage_nxp_stack(&mut self, pid: u64) -> Result<VirtAddr, RunError> {
        let sp = self
            .kernel
            .alloc_nxp_stack(&mut self.mem, pid)
            .map_err(RunError::Load)?;
        self.kernel
            .write_user(
                &mut self.mem,
                pid,
                VirtAddr(layout::DESC_PAGE_VA + L::TCB_NXP_SP),
                &sp.as_u64().to_le_bytes(),
            )
            .map_err(RunError::Load)?;
        Ok(sp)
    }

    /// Runs an open-loop multi-tenant serving schedule to completion.
    ///
    /// `tenants` are loaded prototype processes (one address space,
    /// CR3, staged data set and SRAM stack slot each — see
    /// [`Machine::stage_nxp_stack`]); they never run themselves.
    /// Each [`ServingRequest`] names a tenant by index, an absolute
    /// simulated arrival instant, and an argument delivered in `A0`; at
    /// its arrival the machine spawns a fresh task from the tenant's
    /// prototype ([`flick_os::Kernel::spawn_task`] — pristine entry
    /// context, shared address space) on host core `tenant % hosts` and
    /// schedules it like any other thread, preemption quantum
    /// `quantum`. Tasks of one tenant share its host stack and
    /// descriptor page, so they serialize: a request arriving while its
    /// tenant is busy waits its turn, and the wait is charged to its
    /// latency (open-loop accounting — [`ServingCompletion::latency`]
    /// runs from *arrival*, not admission, so queueing delay under
    /// overload shows up in the tail instead of vanishing into
    /// coordinated omission).
    ///
    /// The run is bit-identical for any worker-thread count and any
    /// rerun at the same schedule, like every other mode of the
    /// machine: arrivals are just one more deterministic event source.
    ///
    /// # Errors
    ///
    /// [`RunError::Build`] on an empty tenant list, an out-of-range
    /// tenant index, or a zombie prototype; otherwise see [`RunError`]
    /// — a crashing request fails the whole run.
    pub fn run_serving(
        &mut self,
        tenants: &[u64],
        requests: &[ServingRequest],
        fuel: u64,
        quantum: u64,
    ) -> Result<ServingReport, RunError> {
        if tenants.is_empty() {
            return Err(RunError::Build("serving run with no tenants".into()));
        }
        for &pid in tenants {
            if self.kernel.task(pid)?.state == flick_os::TaskState::Zombie {
                return Err(RunError::Build(format!(
                    "serving tenant {pid} already exited"
                )));
            }
        }
        if let Some(r) = requests.iter().find(|r| r.tenant >= tenants.len()) {
            return Err(RunError::Build(format!(
                "request names tenant {} but only {} tenants were given",
                r.tenant,
                tenants.len()
            )));
        }
        // Ensure every tenant owns its SRAM stack slot up front, so
        // request tasks never race the first-call allocation path.
        for &pid in tenants {
            if self.kernel.task(pid)?.nxp_stack_ptr.as_u64() == 0 {
                self.stage_nxp_stack(pid)?;
            }
        }
        self.serving = Some(ServingCtx::new(
            tenants,
            requests.to_vec(),
            self.hosts.len(),
        ));
        let res = self.run_event_loop(&[], fuel, quantum);
        let ctx = self.serving.take();
        res?;
        let ctx = ctx.ok_or(RunError::Protocol {
            side: Side::Host,
            context: "serving context vanished during the run",
        })?;
        // All requests completed, so no task is suspended and no leg
        // can still be in flight; land any stragglers defensively so
        // the fleet clocks are final before the snapshot.
        self.join_all_legs()?;
        let finished_at = ctx
            .completions
            .iter()
            .map(|c| c.finished)
            .max()
            .unwrap_or(Picos::ZERO);
        Ok(ServingReport {
            completions: ctx.completions,
            stats: self.fleet_stats(),
            finished_at,
        })
    }

    /// The deterministic discrete-event interleave driving every run:
    /// each turn goes to the eligible host core whose clock is globally
    /// earliest (ties toward the lowest index). A core is eligible when
    /// it holds a task (running or preempted), has queued or stealable
    /// work, or awaits a wake-up; when no core qualifies but processes
    /// remain, the machine is deadlocked.
    fn run_event_loop(
        &mut self,
        pids: &[u64],
        fuel: u64,
        quantum: u64,
    ) -> Result<Vec<(u64, Outcome)>, RunError> {
        // Pipelined mode: overlap NxP legs with host execution on
        // worker threads. Only worth engaging (and only proven
        // equivalent) for effectively-unbounded fuel budgets and an
        // inert fault plan; everything else takes the serialized
        // engine, whose state evolution is byte-identical to the
        // original inline one.
        self.pipelined = self.threads > 1
            && fuel > u64::MAX / 4
            && !self.plan.is_active()
            && !self.plan.has_device_events();
        if self.pipelined && self.par.is_none() {
            self.par = Some(leg::ParEngine::new(self.threads));
        }
        let r = self.event_loop_inner(pids, fuel, quantum);
        if r.is_err() {
            // A failed run must not leave legs in flight: join them
            // (best-effort — the run's error is what gets reported)
            // and drop their wakes.
            while let Some(&nc) = self.in_flight.keys().min() {
                let _ = self.join_leg(nc);
            }
            self.ready_wakes.clear();
        }
        debug_assert!(self.in_flight.is_empty());
        r
    }

    fn event_loop_inner(
        &mut self,
        pids: &[u64],
        fuel: u64,
        quantum: u64,
    ) -> Result<Vec<(u64, Outcome)>, RunError> {
        for &pid in pids {
            if self.kernel.task(pid)?.state == flick_os::TaskState::Zombie {
                return Err(RunError::Build(format!("process {pid} already exited")));
            }
        }
        let n = self.hosts.len();
        let mut rq = RunQueues::new(n);
        for (i, &pid) in pids.iter().enumerate() {
            let task = self.kernel.task_mut(pid)?;
            if matches!(
                task.state,
                flick_os::TaskState::Runnable | flick_os::TaskState::Running
            ) {
                task.last_core = i % n;
                rq.enqueue(i % n, pid);
            }
        }
        // Per-core pending wake-ups, keyed (due, pid): due is the MSI
        // arrival, or the watchdog deadline when the interrupt was
        // lost. A min-heap replaces the old sort-then-scan so delivery
        // stays O(log n) per wake.
        let mut pending: Vec<BinaryHeap<Reverse<(Picos, u64)>>> =
            (0..n).map(|_| BinaryHeap::new()).collect();
        let mut wakes: HashMap<u64, PendingWake> = HashMap::new();
        let mut slots: Vec<CoreSlot> = vec![CoreSlot::default(); n];
        let mut done: Vec<(u64, Outcome)> = Vec::new();
        let start_insts = self.executed();
        // Closed-loop runs finish when every submitted process exits;
        // a serving run finishes when every request of the open-loop
        // schedule has completed (its `pids` list is empty — work
        // enters through the arrival queues instead).
        let finished = |m: &Machine, done: &[(u64, Outcome)]| match &m.serving {
            Some(ctx) => ctx.completions.len() >= ctx.total,
            None => done.len() >= pids.len(),
        };
        while !finished(self, &done) {
            if self.executed() - start_insts >= fuel {
                return Err(RunError::FuelExhausted);
            }
            self.drain_ready_wakes(&mut pending, &mut wakes)?;
            let stealable = rq.total() > 0;
            let hc = (0..n)
                .filter(|&c| {
                    slots[c].running.is_some()
                        || slots[c].preempted.is_some()
                        || rq.len(c) > 0
                        || stealable
                        || !pending[c].is_empty()
                        || self.has_inflight_for(c)
                        || self
                            .serving
                            .as_ref()
                            .is_some_and(|ctx| !ctx.arrivals[c].is_empty())
                })
                .min_by_key(|&c| (self.hosts[c].clock().now(), c));
            let Some(hc) = hc else {
                let stuck = match &self.serving {
                    Some(ctx) => {
                        let mut live: Vec<u64> = ctx.live.keys().copied().collect();
                        live.sort_unstable();
                        live
                    }
                    None => pids
                        .iter()
                        .copied()
                        .filter(|p| !done.iter().any(|(d, _)| d == p))
                        .collect(),
                };
                return Err(RunError::Deadlock { stuck });
            };
            self.core_turn(
                hc,
                &mut rq,
                &mut pending,
                &mut wakes,
                &mut slots,
                &mut done,
                start_insts,
                fuel,
                quantum,
            )?;
        }
        Ok(done)
    }

    /// One scheduling turn of host core `hc`: deliver its due
    /// wake-ups, re-queue its preempted task, pick up work (locally,
    /// then by stealing), and run until the next scheduling event.
    #[allow(clippy::too_many_arguments)]
    fn core_turn(
        &mut self,
        hc: usize,
        rq: &mut RunQueues,
        pending: &mut [BinaryHeap<Reverse<(Picos, u64)>>],
        wakes: &mut HashMap<u64, PendingWake>,
        slots: &mut [CoreSlot],
        done: &mut Vec<(u64, Outcome)>,
        start_insts: u64,
        fuel: u64,
        quantum: u64,
    ) -> Result<(), RunError> {
        // Deliver every wake-up that has already fired on this core,
        // oldest first; a preempted thread re-queues *behind* the
        // freshly woken ones. Delivery advances the host clock, so
        // in-flight legs are re-checked for due joins every iteration
        // — the heap must hold exactly the wakes the sequential engine
        // would have at each delivery decision.
        loop {
            self.resolve_due_legs(hc)?;
            self.drain_ready_wakes(pending, wakes)?;
            if pending[hc]
                .peek()
                .is_none_or(|&Reverse((due, _))| due > self.hosts[hc].clock().now())
            {
                break;
            }
            let Some(Reverse((_, pid))) = pending[hc].pop() else {
                break;
            };
            let wake = wakes.remove(&pid).ok_or(RunError::Protocol {
                side: Side::Host,
                context: "heaped wake-up without a wake record",
            })?;
            // Another thread's leg may still be in flight on this
            // wake's channel; the sequential engine had it complete
            // before this delivery reads the channel's rings.
            self.join_leg(wake.chan)?;
            self.drain_ready_wakes(pending, wakes)?;
            self.deliver_wakeup(hc, pid, wake)?;
            let now = self.hosts[hc].clock().now();
            let task = self.kernel.task_mut(pid)?;
            task.ready_at = now;
            task.last_core = hc;
            rq.enqueue(hc, pid);
        }
        // Open-loop arrivals land like wake-ups: every request whose
        // arrival instant this core's clock has reached is spawned (or
        // queued behind its tenant's live request) before scheduling.
        self.admit_due_arrivals(hc, rq)?;
        if let Some(p) = slots[hc].preempted.take() {
            rq.enqueue(hc, p);
        }
        let pid = match slots[hc].running {
            Some(pid) => pid,
            None => match rq.pop_local(hc).or_else(|| rq.steal(hc)) {
                Some(pid) => {
                    // Causality across cores: never run a task before
                    // the event that readied it (forward-only sync).
                    let ready = self.kernel.task(pid)?.ready_at;
                    self.hosts[hc].clock_mut().sync_to(ready);
                    self.kernel.task_mut(pid)?.last_core = hc;
                    self.install_task(hc, pid)?;
                    slots[hc].running = Some(pid);
                    pid
                }
                None => {
                    // Idle: nothing to run until a wake arrives, so any
                    // leg this core dispatched must land first — this
                    // join is the conservative-synchronization barrier
                    // (wait = the slowest in-flight leg, not the sum).
                    self.join_core_legs(hc)?;
                    self.drain_ready_wakes(pending, wakes)?;
                    // Fast-forward to this core's earliest wake — or,
                    // in serving mode, its next request arrival if that
                    // comes sooner (an idle open-loop core must advance
                    // to the next arrival or the fleet would deadlock
                    // waiting for work that is due in its future).
                    let mut next = pending[hc].peek().map(|&Reverse((due, _))| due);
                    if let Some(&Reverse((due, _))) = self
                        .serving
                        .as_ref()
                        .and_then(|ctx| ctx.arrivals[hc].peek())
                    {
                        next = Some(next.map_or(due, |n| n.min(due)));
                    }
                    if let Some(due) = next {
                        self.hosts[hc].clock_mut().sync_to(due);
                    }
                    return Ok(());
                }
            },
        };
        loop {
            let used = self.executed() - start_insts;
            if used >= fuel {
                return Err(RunError::FuelExhausted);
            }
            let before = self.hosts[hc].counters().instructions;
            let stop = self.hosts[hc].run(&mut self.mem, &self.env, quantum.min(fuel - used));
            self.retired += self.hosts[hc].counters().instructions - before;
            match stop {
                StopReason::Halt => {
                    let code = self.hosts[hc].reg(abi::A0);
                    slots[hc].running = None;
                    if self.serving.is_some() {
                        self.finish_serving(hc, pid, code, rq)?;
                    } else {
                        done.push((pid, self.finish(hc, pid, code)?));
                    }
                    return Ok(());
                }
                StopReason::Ecall(service) => match self.host_ecall(hc, pid, service)? {
                    EcallFlow::Continue => {}
                    EcallFlow::Exit(code) => {
                        slots[hc].running = None;
                        if self.serving.is_some() {
                            self.finish_serving(hc, pid, code, rq)?;
                        } else {
                            done.push((pid, self.finish(hc, pid, code)?));
                        }
                        return Ok(());
                    }
                    EcallFlow::Suspended(wake) => {
                        let due = match wake.msi_at {
                            Some(at) => at,
                            None => self
                                .kernel
                                .task(pid)?
                                .deadline
                                .unwrap_or_else(|| self.hosts[hc].clock().now()),
                        };
                        pending[hc].push(Reverse((due, pid)));
                        wakes.insert(pid, wake);
                        slots[hc].running = None;
                        return Ok(()); // this core is free for others
                    }
                    EcallFlow::Resume => self.install_task(hc, pid)?,
                    EcallFlow::Dispatched => {
                        // The NxP leg is running on a worker thread;
                        // its wake joins the pending heap at the next
                        // touchpoint. The core is free meanwhile.
                        slots[hc].running = None;
                        return Ok(());
                    }
                },
                StopReason::Fault(Exception::InstFault {
                    va,
                    kind: InstFaultKind::NxViolation,
                }) => {
                    // The Flick trigger: host fetched NxP code. Charge
                    // the measured 0.7µs fault path, then either hijack
                    // into the user-space migration handler (§IV-B1) or
                    // — for a thread whose link died — interpret the
                    // NxP function on the host.
                    self.stats.bump("nx_faults");
                    self.trace.record_on(
                        CoreId::host(hc),
                        self.hosts[hc].clock().now(),
                        Event::NxFault {
                            side: Side::Host,
                            fault_va: va.as_u64(),
                        },
                    );
                    // The span opens only at the migrate ioctl (where
                    // its id is assigned); stash the trigger so the
                    // first mark can be backdated to the fault itself.
                    self.last_nx_fault
                        .insert(pid, (self.hosts[hc].clock().now(), hc));
                    let t = self.kernel.timing().page_fault_path;
                    self.hosts[hc].clock_mut().advance(t);
                    if self.kernel.task(pid)?.degraded {
                        let used = self.executed() - start_insts;
                        self.emulate_segment(hc, pid, va, fuel.saturating_sub(used))?;
                    } else {
                        let handler = self
                            .vas
                            .get(&pid)
                            .ok_or(RunError::Protocol {
                                side: Side::Host,
                                context: "NX fault in a process with no handler table",
                            })?
                            .host_handler;
                        self.kernel
                            .redirect_to_handler(pid, &mut self.hosts[hc], va, handler)?;
                    }
                }
                StopReason::Fault(exception) => {
                    return Err(RunError::Crash {
                        side: Side::Host,
                        exception,
                    })
                }
                StopReason::OutOfFuel => {
                    // Quantum expired. Preempt only if a wake-up is
                    // actually due here — otherwise the task keeps the
                    // core and the turn ends (another core may hold
                    // the globally earliest clock now). The heap must
                    // match the sequential engine's at this decision,
                    // so due legs join first.
                    self.resolve_due_legs(hc)?;
                    self.drain_ready_wakes(pending, wakes)?;
                    let now = self.hosts[hc].clock().now();
                    if pending[hc]
                        .peek()
                        .is_some_and(|&Reverse((due, _))| due <= now)
                    {
                        let t = self.kernel.timing().suspend_and_switch;
                        self.hosts[hc].clock_mut().advance(t);
                        let ctx = self.hosts[hc].save_context();
                        let task = self.kernel.task_mut(pid)?;
                        task.context = ctx;
                        task.state = flick_os::TaskState::Runnable;
                        task.ready_at = self.hosts[hc].clock().now();
                        slots[hc].running = None;
                        slots[hc].preempted = Some(pid);
                    }
                    return Ok(());
                }
            }
        }
    }

    /// The ISA of the thread's saved call target, read from the
    /// faulting page's PTE ISA tag (the metadata the loader's extended
    /// `mprotect()` of §IV-C3 stored). Untagged pages — data reached
    /// through a wild pointer, or images predating tagging — resolve
    /// by best fit over the accelerator fleet ([`best_fit_accel_isa`]).
    fn call_target_isa(&self, pid: u64) -> IsaId {
        let Ok(task) = self.kernel.task(pid) else {
            return best_fit_accel_isa(&self.nxp_isas);
        };
        let Some(va) = task.fault_va else {
            return best_fit_accel_isa(&self.nxp_isas);
        };
        let tag = flick_paging::walk(|a| self.mem.read_u64(a), task.cr3, va)
            .map(|t| t.isa_tag)
            .unwrap_or(0);
        isa_from_tag(tag, &self.nxp_isas)
    }

    fn executed(&self) -> u64 {
        // Polled every scheduling-loop iteration: a running total
        // maintained at each `Core::run` call site, instead of
        // re-summing every core in the fleet per poll.
        // While a core is out on a leg a zero-counter spare holds its
        // fleet slot; `par_counter_offset` carries the detached core's
        // pre-dispatch count so the invariant stays exact. (The leg's
        // own retirements are accounted at join.)
        debug_assert_eq!(
            self.retired,
            self.par_counter_offset
                + self
                    .hosts
                    .iter()
                    .chain(self.nxps.iter())
                    .chain(self.emus.iter().flatten())
                    .map(|c| c.counters().instructions)
                    .sum::<u64>(),
            "running retired total out of sync with core counters"
        );
        self.retired
    }

    fn finish(&mut self, hc: usize, pid: u64, code: u64) -> Result<Outcome, RunError> {
        // The outcome snapshots fleet-wide stats; in the sequential
        // engine every dispatched leg has completed by any exit point.
        self.join_all_legs()?;
        let task = self.kernel.task_mut(pid)?;
        task.state = flick_os::TaskState::Zombie;
        task.exit_code = code;
        let stats = self.fleet_stats();
        Ok(Outcome {
            exit_code: code,
            sim_time: self.hosts[hc].clock().now(),
            console: self.kernel.console().to_vec(),
            stats,
        })
    }

    /// Fleet-wide stats snapshot: machine counters plus every core's
    /// counters (NxPs folded under the `nxp_` name space), emulated
    /// instruction totals, health gauges, and the observability bag.
    /// Shared by the per-process [`Outcome`] and the end-of-run
    /// [`ServingReport`] — serving takes it exactly once, because the
    /// per-exit clone would serialize the pipelined engine under
    /// thousands of request completions.
    fn fleet_stats(&mut self) -> Stats {
        let mut stats = self.stats.clone();
        for host in &self.hosts {
            stats.merge(&host.stats());
        }
        // Prefix-less merge would collide; fold NxP counters under a
        // different name space.
        for nxp in &self.nxps {
            for (k, v) in nxp.stats().iter() {
                let name: &'static str = match k {
                    "instructions" => "nxp_instructions",
                    "itlb_misses" => "nxp_itlb_misses",
                    "dtlb_misses" => "nxp_dtlb_misses",
                    "icache_misses" => "nxp_icache_misses",
                    "dcache_misses" => "nxp_dcache_misses",
                    "loads" => "nxp_loads",
                    "stores" => "nxp_stores",
                    "walks" => "nxp_walks",
                    _ => continue,
                };
                stats.bump_by(name, v);
            }
        }
        for emu in self.emus.iter().flatten() {
            stats.bump_by("emulated_instructions", emu.counters().instructions);
        }
        // Per-NxP health gauges, recorded only when a device-fault
        // schedule exists so fault-free observability output is
        // byte-identical to the pre-failover machine.
        if self.obs.enabled() && self.plan.has_device_events() {
            for i in 0..self.nxps.len() {
                let h = *self.health.health(i);
                self.obs_stats
                    .record_hist(&format!("health:deaths:nxp{i}"), h.deaths);
                self.obs_stats
                    .record_hist(&format!("health:recoveries:nxp{i}"), h.recoveries);
            }
        }
        // Observability histograms/gauges ride along in the same bag;
        // the merge touches only the histogram map, never the counters,
        // so stats comparisons stay bit-identical with the layer off.
        stats.merge(&self.obs_stats);
        stats
    }

    /// Spawns every request whose arrival instant host core `hc` has
    /// reached: a fresh task from the tenant's prototype if the tenant
    /// is free, else a FIFO deferral behind its live request. No-op
    /// outside serving mode.
    fn admit_due_arrivals(&mut self, hc: usize, rq: &mut RunQueues) -> Result<(), RunError> {
        if self.serving.is_none() {
            return Ok(());
        }
        loop {
            let now = self.hosts[hc].clock().now();
            let Some(ctx) = self.serving.as_mut() else {
                return Ok(());
            };
            let Some(&Reverse((due, idx))) = ctx.arrivals[hc].peek() else {
                return Ok(());
            };
            if due > now {
                return Ok(());
            }
            ctx.arrivals[hc].pop();
            let tenant = ctx.reqs[idx].tenant;
            if ctx.tenants[tenant].busy {
                ctx.tenants[tenant].deferred.push_back(idx);
            } else {
                self.spawn_request(hc, idx, due, rq)?;
            }
        }
    }

    /// Spawns the task for request `idx` (ready at `ready`, queued on
    /// host core `hc`) and marks its tenant busy.
    fn spawn_request(
        &mut self,
        hc: usize,
        idx: usize,
        ready: Picos,
        rq: &mut RunQueues,
    ) -> Result<(), RunError> {
        let (proto, arg, tenant) = {
            let ctx = self.serving.as_ref().ok_or(RunError::Protocol {
                side: Side::Host,
                context: "request spawn outside a serving run",
            })?;
            let req = ctx.reqs[idx];
            (ctx.tenants[req.tenant].proto, req.arg, req.tenant)
        };
        let pid = self.kernel.spawn_task(proto)?;
        // The request task migrates through its tenant's handler table
        // (same address space, same handler VAs).
        if let Some(v) = self.vas.get(&proto).copied() {
            self.vas.insert(pid, v);
        }
        let task = self.kernel.task_mut(pid)?;
        // The request argument rides in A0: the tenant program's
        // `main` dispatches on it (request kind, key, …). Spawning
        // charges no simulated time — the model is a pre-forked worker
        // picking a request off its tenant's queue, not a fork.
        task.context.regs[abi::A0.index()] = arg;
        task.ready_at = ready;
        task.last_core = hc;
        if let Some(ctx) = self.serving.as_mut() {
            ctx.tenants[tenant].busy = true;
            ctx.live.insert(pid, idx);
        }
        rq.enqueue(hc, pid);
        Ok(())
    }

    /// Serving-mode request exit: record the completion, reap the
    /// task, and hand the tenant to its next deferred request (which
    /// becomes ready *now* — its queueing delay stays charged to its
    /// open-loop latency). Deliberately does none of [`Machine::finish`]'s
    /// fleet-wide work: no leg barrier, no stats clone — a saturated
    /// run retires thousands of requests and takes its one snapshot at
    /// the end.
    fn finish_serving(
        &mut self,
        hc: usize,
        pid: u64,
        code: u64,
        rq: &mut RunQueues,
    ) -> Result<(), RunError> {
        self.span_of.remove(&pid);
        self.nxp_of.remove(&pid);
        self.retained_n2h.remove(&pid);
        self.retained_h2n.remove(&pid);
        self.last_nx_fault.remove(&pid);
        self.vas.remove(&pid);
        let now = self.hosts[hc].clock().now();
        let ctx = self.serving.as_mut().ok_or(RunError::Protocol {
            side: Side::Host,
            context: "serving exit outside a serving run",
        })?;
        let idx = ctx.live.remove(&pid).ok_or(RunError::Protocol {
            side: Side::Host,
            context: "serving exit from a task with no live request",
        })?;
        let req = ctx.reqs[idx];
        ctx.completions.push(ServingCompletion {
            request: idx,
            tenant: req.tenant,
            arrival: req.arrival,
            finished: now,
            exit_code: code,
        });
        let next = {
            let t = &mut ctx.tenants[req.tenant];
            let n = t.deferred.pop_front();
            if n.is_none() {
                t.busy = false;
            }
            n
        };
        self.kernel.reap_task(pid)?;
        if let Some(nidx) = next {
            self.spawn_request(hc, nidx, now, rq)?;
        }
        Ok(())
    }

    /// The simulated-time half of the admission check
    /// ([`MachineBuilder::ring_occupancy_admission`]): true when
    /// `ring_capacity` kicked bursts on channel `nc` have pickup
    /// instants still in the doorbell write's future. Entries are
    /// pushed in NxP-clock order, so draining the due prefix keeps the
    /// queue exactly the not-yet-picked-up set.
    fn ring_sim_occupied(&mut self, nc: usize, now: Picos, cap: usize) -> bool {
        let Some(occ) = self.ring_occupancy.as_mut() else {
            return false;
        };
        let q = &mut occ[nc];
        while q.front().is_some_and(|&t| t <= now) {
            q.pop_front();
        }
        q.len() >= cap
    }

    /// Handles a host `ecall`.
    fn host_ecall(&mut self, hc: usize, pid: u64, service: u16) -> Result<EcallFlow, RunError> {
        let timing = self.kernel.timing().clone();
        self.hosts[hc].clock_mut().advance(timing.syscall_entry);
        match service {
            svc::EXIT => {
                return Ok(EcallFlow::Exit(self.hosts[hc].reg(abi::A0)));
            }
            svc::PRINT_U64 => {
                let v = self.hosts[hc].reg(abi::A0);
                self.kernel.console_push(format!("{v}"));
            }
            svc::PRINT_STR => {
                let ptr = VirtAddr(self.hosts[hc].reg(abi::A0));
                let len = self.hosts[hc].reg(abi::A1) as usize;
                let mut buf = vec![0u8; len.min(4096)];
                self.kernel
                    .read_user(&self.mem, pid, ptr, &mut buf)
                    .map_err(RunError::Load)?;
                self.kernel
                    .console_push(String::from_utf8_lossy(&buf).into_owned());
            }
            svc::ALLOC_HOST => {
                let size = self.hosts[hc].reg(abi::A0);
                let pages = size.div_ceil(flick_mem::PAGE_SIZE);
                let va = self
                    .kernel
                    .alloc_host_heap(&mut self.mem, pid, size)
                    .map_err(RunError::Load)?;
                self.hosts[hc].clock_mut().advance(timing.page_alloc * pages.max(1));
                self.hosts[hc].set_reg(abi::A0, va.as_u64());
            }
            svc::ALLOC_NXP => {
                let size = self.hosts[hc].reg(abi::A0);
                let va = self
                    .kernel
                    .alloc_nxp_heap(pid, size)
                    .map_err(RunError::Load)?;
                self.hosts[hc].set_reg(abi::A0, va.as_u64());
            }
            svc::CLOCK_NS => {
                let ns = self.hosts[hc].clock().now().as_nanos();
                self.hosts[hc].set_reg(abi::A0, ns);
            }
            svc::SLEEP_NS => {
                let ns = self.hosts[hc].reg(abi::A0);
                self.hosts[hc].clock_mut().advance(Picos::from_nanos(ns));
            }
            svc::ALLOC_NXP_STACK => {
                let sp = self
                    .kernel
                    .alloc_nxp_stack(&mut self.mem, pid)
                    .map_err(RunError::Load)?;
                self.hosts[hc].clock_mut().advance(timing.nxp_stack_setup);
                // Record it in the TCB word of the descriptor page so
                // the handler's first-time check passes next time.
                self.kernel
                    .write_user(
                        &mut self.mem,
                        pid,
                        VirtAddr(layout::DESC_PAGE_VA + L::TCB_NXP_SP),
                        &sp.as_u64().to_le_bytes(),
                    )
                    .map_err(RunError::Load)?;
                self.stats.bump("nxp_stack_allocs");
                // No register result: the handler must keep the original
                // call's argument registers intact for the descriptor.
            }
            svc::MIGRATE_AND_SUSPEND => {
                return self.migrate_send(hc, pid, DescKind::HostToNxpCall);
            }
            svc::MIGRATE_RETURN_AND_SUSPEND => {
                return self.migrate_send(hc, pid, DescKind::HostToNxpReturn);
            }
            other => {
                return Err(RunError::UnknownService {
                    side: Side::Host,
                    service: other,
                })
            }
        }
        self.hosts[hc].clock_mut().advance(timing.syscall_exit);
        Ok(EcallFlow::Continue)
    }

    /// The migrate-and-suspend `ioctl` (§IV-B1) plus the full NxP
    /// phase: builds and sends the descriptor (retransmitting, bounded,
    /// on injected burst faults), suspends the thread, runs the NxP
    /// side to completion of its leg, and returns how the thread
    /// expects to be woken. The host core is *free* from the moment the
    /// thread suspends — which is what lets other processes run in the
    /// gap (see [`Machine::run_concurrent`]).
    ///
    /// If the host→NxP *call* leg exhausts its delivery budget the call
    /// degrades gracefully: the thread is unwound out of the migration
    /// handler and re-pointed at the target function, which the
    /// host-side interpreter then executes ([`EcallFlow::Resume`]). A
    /// dead *return* leg is unrecoverable ([`RunError::LinkDead`]):
    /// re-running the remote call would double its side effects.
    fn migrate_send(&mut self, hc: usize, pid: u64, kind: DescKind) -> Result<EcallFlow, RunError> {
        let timing = self.kernel.timing().clone();
        self.refresh_fleet(hc);
        // ioctl: gather target/CR3/PID/args from task_struct + regs
        // (call) or just the return value (return).
        self.hosts[hc].clock_mut().advance(match kind {
            DescKind::HostToNxpCall => timing.ioctl_desc_prep_call,
            _ => timing.ioctl_desc_prep_return,
        });
        // Pick the serving NxP: a return leg follows the thread back to
        // the NxP holding its continuation; a fresh call goes where the
        // placement policy says.
        let nc = match kind {
            DescKind::HostToNxpReturn => {
                self.nxp_of
                    .get(&pid)
                    .and_then(|stack| stack.last().copied())
                    .ok_or(RunError::Protocol {
                        side: Side::Host,
                        context: "return leg for a thread with no NxP continuation",
                    })?
            }
            _ => {
                // Placement sees only NxPs whose breaker admits work
                // (closed or half-open). With every device dead, fall
                // back to the full set and let the delivery loop
                // detect the failure and degrade gracefully.
                let want = self.call_target_isa(pid);
                let live: Vec<usize> = self.health.live().collect();
                let pool: Vec<usize> = if live.is_empty() {
                    (0..self.nxps.len()).collect()
                } else {
                    live
                };
                if pool.is_empty() {
                    return Err(RunError::Protocol {
                        side: Side::Host,
                        context: "placement over a machine with no NxPs",
                    });
                }
                // Narrow to the callee's ISA (read off the faulting
                // page's PTE tag). When every NxP of that ISA is
                // breaker-open, prefer a matching-but-unhealthy slot —
                // delivery failure degrades to host emulation, which
                // speaks any ISA — over a healthy slot that would
                // fault `NxViolation` at the first fetch and bounce
                // the call straight back. A fleet with no slot of the
                // wanted ISA at all keeps the generic pool.
                let of_isa: Vec<usize> = pool
                    .iter()
                    .copied()
                    .filter(|&k| self.nxp_isas[k] == want)
                    .collect();
                let pool: Vec<usize> = if !of_isa.is_empty() {
                    of_isa
                } else {
                    let all_of_isa: Vec<usize> = (0..self.nxps.len())
                        .filter(|&k| self.nxp_isas[k] == want)
                        .collect();
                    if all_of_isa.is_empty() {
                        pool
                    } else {
                        all_of_isa
                    }
                };
                // Least-loaded placement compares every NxP clock; a
                // detached core's slot holds a zero-clock spare, so
                // every leg must land before the comparison reads.
                if matches!(self.placement, NxpPlacement::LeastLoaded) {
                    self.join_all_legs()?;
                }
                let nc = match self.placement {
                    NxpPlacement::RoundRobin => {
                        let k = pool[self.rr_next % pool.len()];
                        self.rr_next = self.rr_next.wrapping_add(1);
                        k
                    }
                    NxpPlacement::LeastLoaded => pool
                        .iter()
                        .copied()
                        .min_by_key(|&k| (self.nxps[k].clock().now(), k))
                        .unwrap_or(pool[0]),
                };
                self.nxp_of.entry(pid).or_default().push(nc);
                nc
            }
        };
        // At most one leg in flight per channel, ever: the previous
        // leg on this channel (possibly another thread's) must land
        // before this one touches the channel's sequence spaces,
        // rings, or NxP clock. Per-channel join order therefore equals
        // dispatch order, which is what keeps sequence assignment
        // identical to the sequential engine.
        self.join_leg(nc)?;
        let seq = self.chans[nc].h2n;
        self.chans[nc].h2n += 1;
        // The span id is assigned unconditionally — it lives in the
        // descriptor's wire bytes, so it must not depend on whether
        // span *recording* is enabled (bit-inert observability).
        let span = self.next_span;
        self.next_span += 1;
        self.span_of.insert(pid, span);
        let desc = match kind {
            DescKind::HostToNxpCall => {
                let task = self.kernel.task_mut(pid)?;
                let Some(target) = task.fault_va.take() else {
                    return Err(RunError::Protocol {
                        side: Side::Host,
                        context: "migrate ioctl without a saved fault target",
                    });
                };
                MigrationDescriptor {
                    kind,
                    target: target.as_u64(),
                    ret: 0,
                    args: [
                        self.hosts[hc].reg(abi::A0),
                        self.hosts[hc].reg(abi::A1),
                        self.hosts[hc].reg(abi::A2),
                        self.hosts[hc].reg(abi::A3),
                        self.hosts[hc].reg(abi::A4),
                        self.hosts[hc].reg(abi::A5),
                    ],
                    pid,
                    cr3: self.kernel.task(pid)?.cr3.as_u64(),
                    nxp_sp: self.kernel.task(pid)?.nxp_stack_ptr.as_u64(),
                    seq,
                    span,
                }
            }
            DescKind::HostToNxpReturn => {
                // The handler stored the host function's return value
                // in the descriptor page.
                let mut ret = [0u8; 8];
                self.kernel
                    .read_user(
                        &self.mem,
                        pid,
                        VirtAddr(layout::DESC_PAGE_VA + L::RET),
                        &mut ret,
                    )
                    .map_err(RunError::Load)?;
                let t = self.kernel.task(pid)?;
                MigrationDescriptor {
                    kind,
                    target: 0,
                    ret: u64::from_le_bytes(ret),
                    args: [0; 6],
                    pid,
                    cr3: t.cr3.as_u64(),
                    nxp_sp: t.nxp_stack_ptr.as_u64(),
                    seq,
                    span,
                }
            }
            _ => {
                return Err(RunError::Protocol {
                    side: Side::Host,
                    context: "host only sends host-to-NxP descriptor kinds",
                })
            }
        };

        // Suspend (TASK_KILLABLE) and context switch away; the
        // scheduler triggers the DMA *after* the switch via the
        // migration flag (§IV-D).
        self.kernel.suspend_for_migration(pid, &self.hosts[hc])?;
        self.hosts[hc].clock_mut().advance(timing.suspend_and_switch);
        self.obs.begin(span, pid, kind.label());
        if let Some((at, core)) = self.last_nx_fault.remove(&pid) {
            self.obs.mark(span, SpanStage::NxFault, at, CoreId::host(core));
        }
        self.obs.mark(
            span,
            SpanStage::DescPack,
            self.hosts[hc].clock().now(),
            CoreId::host(hc),
        );
        self.trace.record_on(
            CoreId::host(hc),
            self.hosts[hc].clock().now(),
            Event::ThreadSuspended { pid },
        );
        self.trace.record_on(
            CoreId::host(hc),
            self.hosts[hc].clock().now(),
            Event::DescriptorSent {
                from: Side::Host,
                kind: kind.label(),
                bytes: L::SIZE as usize,
            },
        );
        match kind {
            DescKind::HostToNxpCall => self.stats.bump("migrations_host_to_nxp"),
            _ => self.stats.bump("returns_host_to_nxp"),
        }

        // Retain the h2n wire bytes host-side for as long as the round
        // trip is open: if the serving NxP dies before the reply lands,
        // this copy is what failover re-executes on a survivor.
        let mut nc = nc;
        let mut desc = desc;
        self.retained_h2n.insert(pid, (nc, desc.to_bytes()));

        // Host→NxP delivery: kick the DMA, let the NxP scheduler pick
        // the burst up, and retransmit — bounded, with exponential
        // backoff — on a lost burst or a checksum NAK. A device-level
        // fault (crash, hang, unplug) exhausts the same budget —
        // detection latency *is* the retry cost — and then fails the
        // victim over to a surviving NxP.
        let mut attempt = 0u32;
        let (in_bytes, in_desc) = loop {
            attempt += 1;
            let now = self.hosts[hc].clock().now();
            // An unplugged card is detected instantly: presence detect
            // reads zero at the doorbell write, no retry budget burned.
            let unplugged =
                self.plan.device_state(nc, now) == Some(DeviceFaultKind::Unplug);
            if attempt > timing.retry.max_link_attempts || unplugged {
                if let Some(fault) = self.plan.device_state(nc, now) {
                    self.declare_nxp_dead(hc, nc, fault);
                    if let Some(next) = self.pick_failover_target(nc) {
                        self.stats.bump("failover_replacements");
                        self.trace.record_on(
                            CoreId::host(hc),
                            now,
                            Event::FailoverReplaced {
                                pid,
                                from_nxp: nc,
                                to_nxp: next,
                            },
                        );
                        nc = next;
                        self.set_continuation_top(pid, nc);
                        desc.seq = self.chans[nc].h2n;
                        self.chans[nc].h2n += 1;
                        self.retained_h2n.insert(pid, (nc, desc.to_bytes()));
                        attempt = 0;
                        continue;
                    }
                }
                // Pure link death, or the whole fleet is gone: degrade
                // a call to host-side emulation, fail a return leg.
                self.retained_h2n.remove(&pid);
                return if kind == DescKind::HostToNxpCall {
                    self.span_of.remove(&pid);
                    self.obs.abandon(span);
                    self.degrade_unwind(hc, pid, &desc)?;
                    Ok(EcallFlow::Resume)
                } else {
                    Err(RunError::LinkDead {
                        pid,
                        stage: "host-to-nxp return",
                    })
                };
            }
            if attempt > 1 {
                self.stats.bump("retransmits");
                self.trace.record_on(
                    CoreId::host(hc),
                    self.hosts[hc].clock().now(),
                    Event::Retransmit {
                        to: Side::Nxp,
                        seq: desc.seq,
                        attempt,
                    },
                );
            }
            if attempt == 1 {
                self.obs.mark(span, SpanStage::DmaSubmit, now, CoreId::host(hc));
            }
            // Bounded admission: a ring already at capacity (a hung
            // device stops draining it — wall depth — or, with the
            // occupancy knob on, one whose slots are all awaiting
            // pickups in this doorbell write's simulated future)
            // rejects the kick at the doorbell — typed backpressure,
            // charged as one attempt of the same bounded budget (the
            // driver's EAGAIN path).
            if self.ring_sim_occupied(nc, now, timing.retry.ring_capacity)
                || self.fabric.channel(nc).depth_to_nxp() >= timing.retry.ring_capacity
            {
                self.stats.bump("admission_rejects");
                self.trace
                    .record_on(CoreId::host(hc), now, Event::AdmissionRejected { chan: nc });
                self.health.note_failure(nc);
                self.hosts[hc]
                    .clock_mut()
                    .advance(timing.retry.backoff_for(attempt));
                continue;
            }
            let (arrival, pert) =
                self.fabric
                    .kick_to_nxp_faulty(nc, now, desc.to_bytes(), &mut self.plan);
            if self.obs.enabled() {
                let depth = self.fabric.channel(nc).depth_to_nxp() as u64;
                self.obs_stats
                    .record_hist(&format!("qdepth:h2n:nxp{nc}"), depth);
            }
            self.note_burst_faults(CoreId::host(hc), Side::Nxp, now, &pert);
            if pert.dropped {
                // Posted write lost: the driver's completion timer
                // expires and it re-kicks after an exponential backoff.
                self.health.note_failure(nc);
                self.hosts[hc]
                    .clock_mut()
                    .advance(timing.retry.backoff_for(attempt));
                continue;
            }
            match self.nxp_pickup(nc, arrival, desc.seq) {
                Pickup::Accept(b, d) => break (b, d),
                Pickup::Corrupt => {
                    // The NxP NAKed: the NAK crosses the link and the
                    // host driver re-kicks.
                    self.health.note_failure(nc);
                    let t = self.nxps[nc].clock().now();
                    self.hosts[hc].clock_mut().sync_to(t);
                    self.hosts[hc].clock_mut().advance(timing.nak_path);
                }
                Pickup::Duplicate => {
                    // Defensive: a stale burst was discarded; re-kick
                    // after a backoff.
                    self.hosts[hc]
                        .clock_mut()
                        .advance(timing.retry.backoff_for(attempt));
                }
                Pickup::Dead => {
                    // A dead or hung scheduler never polls the status
                    // register: the host's completion timer expires
                    // exactly as for a lost burst and it re-kicks.
                    self.health.note_failure(nc);
                    self.hosts[hc]
                        .clock_mut()
                        .advance(timing.retry.backoff_for(attempt));
                }
            }
        };

        // Accepted: run the NxP leg until it sends a descriptor back,
        // then arm the watchdog from the *expected* wake time so a lost
        // wake-up interrupt is always noticed.
        match self.dispatch_leg(hc, nc, pid, in_bytes, in_desc)? {
            Some(wake) => {
                let base = wake.msi_at.unwrap_or_else(|| {
                    self.nxps[nc].clock().now().max(self.hosts[hc].clock().now())
                });
                self.kernel.task_mut(pid)?.deadline =
                    Some(base + timing.retry.migration_watchdog);
                Ok(EcallFlow::Suspended(wake))
            }
            None => Ok(EcallFlow::Dispatched),
        }
    }

    /// Scans for dead NxPs whose scheduled outage has ended (presence
    /// detect came back): resets the channel protocol state for the new
    /// device incarnation — fresh sequence spaces, reaped rings, purged
    /// MSI vector — and half-opens the breaker so exactly one probe
    /// migration is routed there before full placement resumes.
    fn refresh_fleet(&mut self, hc: usize) {
        if !self.plan.has_device_events() {
            return;
        }
        let now = self.hosts[hc].clock().now();
        for nc in 0..self.nxps.len() {
            if self.health.is_open(nc) && self.plan.device_up(nc, now) {
                self.chans[nc] = ChannelSeqs {
                    incarnation: self.chans[nc].incarnation + 1,
                    ..ChannelSeqs::default()
                };
                self.fabric.reap_channel(nc);
                self.irq.purge_vector(nc as u32);
                self.health.rejoin(nc);
                self.stats.bump("nxp_rejoins");
                self.trace
                    .record_on(CoreId::host(hc), now, Event::NxpRejoined { nxp: nc });
            }
        }
    }

    /// Declares NxP `nc` dead and quiesces its channel: both ring
    /// directions are reaped and its MSI vector purged, so nothing sent
    /// by the dead incarnation can ever be claimed by a thread placed
    /// on a later one. Reaping loses no work — every open round trip
    /// retains its h2n descriptor host-side for re-execution. Idempotent.
    fn declare_nxp_dead(&mut self, hc: usize, nc: usize, fault: DeviceFaultKind) {
        if self.health.is_open(nc) {
            return;
        }
        let now = self.hosts[hc].clock().now();
        self.health.declare_dead(nc);
        self.stats.bump("nxp_deaths");
        self.trace.record_on(
            CoreId::host(hc),
            now,
            Event::DeviceFault {
                nxp: nc,
                kind: fault.label(),
            },
        );
        self.trace
            .record_on(CoreId::host(hc), now, Event::NxpDeclaredDead { nxp: nc });
        let reaped = self.fabric.reap_channel(nc);
        let purged = self.irq.purge_vector(nc as u32);
        self.stats.bump_by("descs_reaped", reaped as u64);
        self.stats.bump_by("msis_purged", purged as u64);
        self.trace.record_on(
            CoreId::host(hc),
            now,
            Event::DescriptorsReaped {
                nxp: nc,
                count: reaped as u64,
            },
        );
    }

    /// Deterministic failover placement: the surviving NxP whose clock
    /// is earliest (ties toward the lowest index) — a victim always
    /// re-places onto the least-loaded survivor, whatever the
    /// configured policy for fresh calls. Only same-ISA survivors
    /// qualify: a leg re-executed on a core of another ISA would fault
    /// at its first fetch instead of making progress.
    fn pick_failover_target(&self, dead: usize) -> Option<usize> {
        let isa = self.nxp_isas[dead];
        self.health
            .live()
            .filter(|&k| k != dead && self.nxp_isas[k] == isa)
            .min_by_key(|&k| (self.nxps[k].clock().now(), k))
    }

    /// Repoints the innermost continuation of `pid` at `nc` (delivery
    /// retries and failover re-executions move a leg between NxPs
    /// without changing nesting depth).
    fn set_continuation_top(&mut self, pid: u64, nc: usize) {
        let stack = self.nxp_of.entry(pid).or_default();
        match stack.last_mut() {
            Some(top) => *top = nc,
            None => stack.push(nc),
        }
    }

    /// Records trace events and counters for injected burst faults.
    fn note_burst_faults(&mut self, on: CoreId, to: Side, at: Picos, p: &BurstPerturbation) {
        if p.dropped {
            self.stats.bump("faults_injected");
            self.trace.record_on(
                on,
                at,
                Event::FaultInjected {
                    kind: "drop-burst",
                    to,
                },
            );
        }
        if p.corrupted.is_some() {
            self.stats.bump("faults_injected");
            self.trace.record_on(
                on,
                at,
                Event::FaultInjected {
                    kind: "corrupt-burst",
                    to,
                },
            );
        }
        if p.stall > Picos::ZERO {
            self.stats.bump("faults_injected");
            self.trace.record_on(
                on,
                at,
                Event::FaultInjected {
                    kind: "link-stall",
                    to,
                },
            );
        }
    }

    /// Raises an MSI through the fault plan; returns its arrival time,
    /// or `None` if the interrupt was swallowed in flight.
    fn raise_msi(&mut self, on: CoreId, msi: Msi, at: Picos) -> Option<Picos> {
        let due = msi.at;
        match self.irq.raise_with(msi, &mut self.plan) {
            MsiFate::Delivered => Some(due),
            MsiFate::Duplicated => {
                self.stats.bump("faults_injected");
                self.trace.record_on(
                    on,
                    at,
                    Event::FaultInjected {
                        kind: "dup-msi",
                        to: Side::Host,
                    },
                );
                Some(due)
            }
            MsiFate::Dropped => {
                self.stats.bump("faults_injected");
                self.trace.record_on(
                    on,
                    at,
                    Event::FaultInjected {
                        kind: "drop-msi",
                        to: Side::Host,
                    },
                );
                None
            }
        }
    }

    /// The interrupt-driven wakeup with recovery: wait for the MSI (or
    /// the watchdog deadline), validate the descriptor out of the host
    /// ring, NAK corruption, discard duplicates, demand retransmission
    /// after watchdog expiry, and finally copy the descriptor into the
    /// process page and mark the thread runnable.
    fn deliver_wakeup(&mut self, hc: usize, pid: u64, wake: PendingWake) -> Result<(), RunError> {
        let timing = self.kernel.timing().clone();
        let mut wake = wake;
        let mut expect_msi = wake.msi_at;
        let mut attempt = 1u32; // kicks of the current descriptor so far
        loop {
            let Some(deadline) = self.kernel.task(pid)?.deadline else {
                return Err(RunError::Protocol {
                    side: Side::Host,
                    context: "suspended thread without an armed watchdog",
                });
            };
            let accepted = match expect_msi.filter(|at| *at <= deadline) {
                Some(at) => {
                    self.hosts[hc].clock_mut().sync_to(at);
                    let now = self.hosts[hc].clock().now();
                    // Claim exactly the interrupt this wake raised (by
                    // its recorded arrival instant): several tenants
                    // can be suspended on one channel, and a due-time
                    // scan here would steal a neighbour's MSI.
                    let Some(msi) = self.irq.take_vector_at(at, wake.chan as u32) else {
                        if self.plan.has_device_events() {
                            // The vector was purged by a failover
                            // quiesce on this channel: fall back to the
                            // watchdog poll, which will notice the dead
                            // device and re-execute on a survivor.
                            expect_msi = None;
                            continue;
                        }
                        return Err(RunError::Protocol {
                            side: Side::Host,
                            context: "expected wake-up MSI was not queued",
                        });
                    };
                    if let Some(&span) = self.span_of.get(&pid) {
                        self.obs
                            .mark(span, SpanStage::MsiDelivery, now, CoreId::host(hc));
                    }
                    self.hosts[hc].clock_mut().advance(timing.irq_entry);
                    let r = self.try_accept_host_desc(hc, wake.chan, pid, &timing)?;
                    // A duplicated MSI sits at the same instant; the
                    // kernel takes the extra interrupt, finds nothing
                    // to deliver, and returns.
                    while self.irq.take_vector_at(msi.at, wake.chan as u32).is_some() {
                        self.stats.bump("spurious_wakeups");
                        self.trace.record_on(
                            CoreId::host(hc),
                            self.hosts[hc].clock().now(),
                            Event::SpuriousWakeup { pid },
                        );
                        self.hosts[hc].clock_mut().advance(timing.irq_entry);
                    }
                    r
                }
                None => {
                    // No interrupt by the deadline: the watchdog fires
                    // and polls the descriptor ring directly.
                    self.hosts[hc].clock_mut().sync_to(deadline);
                    self.stats.bump("watchdog_fires");
                    self.trace.record_on(
                        CoreId::host(hc),
                        self.hosts[hc].clock().now(),
                        Event::WatchdogFired { pid },
                    );
                    self.hosts[hc].clock_mut().advance(timing.irq_entry);
                    let r = self.try_accept_host_desc(hc, wake.chan, pid, &timing)?;
                    if let HostAccept::Woken(seq) = r {
                        // The payload made it but its MSI did not.
                        self.stats.bump("msi_losses_recovered");
                        self.trace.record_on(
                            CoreId::host(hc),
                            self.hosts[hc].clock().now(),
                            Event::MsiLossRecovered { pid, seq },
                        );
                    }
                    r
                }
            };
            match accepted {
                HostAccept::Woken(_) => return Ok(()),
                HostAccept::Empty | HostAccept::Corrupt => {
                    // Lost or damaged burst: demand retransmission of
                    // the retained wire bytes and re-arm the watchdog.
                    attempt += 1;
                    // A crashed or unplugged device cannot answer the
                    // demand — its retained reply bytes died with it. A
                    // hung one still can (link up), so it only fails
                    // over once the retry budget exhausts.
                    let fault = self
                        .plan
                        .device_state(wake.chan, self.hosts[hc].clock().now());
                    let dead_now = matches!(
                        fault,
                        Some(DeviceFaultKind::Crash | DeviceFaultKind::Unplug)
                    );
                    // A wake stamped with an older channel incarnation
                    // outlived its device: the reply (and its retained
                    // retransmit copy) died with the old incarnation,
                    // so re-execute — the rejoined device reading
                    // healthy does not make the stale bytes deliverable.
                    let stale = self.chans[wake.chan].incarnation != wake.incarnation;
                    if dead_now
                        || stale
                        || (attempt > timing.retry.max_link_attempts && fault.is_some())
                    {
                        if let Some(f) = fault {
                            self.declare_nxp_dead(hc, wake.chan, f);
                        }
                        match self.failover_reexecute(hc, pid)? {
                            Some(new_wake) => {
                                wake = new_wake;
                                expect_msi = wake.msi_at;
                                attempt = 1;
                                let base = wake.msi_at.unwrap_or_else(|| {
                                    self.nxps[wake.chan]
                                        .clock()
                                        .now()
                                        .max(self.hosts[hc].clock().now())
                                });
                                self.kernel.task_mut(pid)?.deadline =
                                    Some(base + timing.retry.migration_watchdog);
                                continue;
                            }
                            None => {
                                return Err(RunError::LinkDead {
                                    pid,
                                    stage: "nxp-to-host",
                                })
                            }
                        }
                    }
                    if attempt > timing.retry.max_link_attempts {
                        return Err(RunError::LinkDead {
                            pid,
                            stage: "nxp-to-host",
                        });
                    }
                    let Some((chan, bytes)) = self.retained_n2h.get(&pid).cloned() else {
                        return Err(RunError::Protocol {
                            side: Side::Host,
                            context: "no retained descriptor to retransmit",
                        });
                    };
                    let seq = MigrationDescriptor::from_bytes(&bytes).map_or(0, |d| d.seq);
                    self.stats.bump("retransmits");
                    let now = self.hosts[hc].clock().now();
                    self.trace.record_on(
                        CoreId::host(hc),
                        now,
                        Event::Retransmit {
                            to: Side::Host,
                            seq,
                            attempt,
                        },
                    );
                    let (_arrival, maybe_msi, pert) =
                        self.fabric
                            .kick_to_host_faulty(chan, now, bytes, &mut self.plan);
                    if self.obs.enabled() {
                        let depth = self.fabric.channel(chan).depth_to_host() as u64;
                        self.obs_stats
                            .record_hist(&format!("qdepth:n2h:nxp{chan}"), depth);
                    }
                    self.note_burst_faults(CoreId::host(hc), Side::Host, now, &pert);
                    expect_msi =
                        maybe_msi.and_then(|m| self.raise_msi(CoreId::host(hc), m, now));
                    self.kernel.task_mut(pid)?.deadline =
                        Some(self.hosts[hc].clock().now() + timing.retry.migration_watchdog);
                }
            }
        }
    }

    /// Re-executes `pid`'s retained host→NxP leg on a surviving NxP
    /// after its serving device died mid-round-trip. The NxP leg is a
    /// pure function of its descriptor plus the thread's checkpointed
    /// context — saved host-side at every NxP switch-out — so
    /// re-delivery is at-least-once semantics over an offload model
    /// with no device-resident side effects, not a correctness risk.
    /// Returns `Ok(None)` when no live NxP remains to take the work.
    fn failover_reexecute(
        &mut self,
        hc: usize,
        pid: u64,
    ) -> Result<Option<PendingWake>, RunError> {
        let timing = self.kernel.timing().clone();
        self.refresh_fleet(hc);
        let Some((dead, bytes)) = self.retained_h2n.get(&pid).cloned() else {
            return Err(RunError::Protocol {
                side: Side::Host,
                context: "no retained descriptor to re-execute",
            });
        };
        let Some(mut desc) = MigrationDescriptor::from_bytes(&bytes) else {
            return Err(RunError::Protocol {
                side: Side::Host,
                context: "retained host-to-nxp descriptor does not parse",
            });
        };
        'candidates: loop {
            let Some(nc) = self.pick_failover_target(dead) else {
                return Ok(None);
            };
            desc.seq = self.chans[nc].h2n;
            self.chans[nc].h2n += 1;
            self.set_continuation_top(pid, nc);
            self.retained_h2n.insert(pid, (nc, desc.to_bytes()));
            self.stats.bump("failover_reexecutions");
            self.trace.record_on(
                CoreId::host(hc),
                self.hosts[hc].clock().now(),
                Event::FailoverReexecuted { pid, on_nxp: nc },
            );
            let mut attempt = 0u32;
            let (in_bytes, in_desc) = loop {
                attempt += 1;
                let now = self.hosts[hc].clock().now();
                let fault = self.plan.device_state(nc, now);
                if attempt > timing.retry.max_link_attempts
                    || fault == Some(DeviceFaultKind::Unplug)
                {
                    if let Some(f) = fault {
                        // The survivor died too: declare it and move on
                        // to the next candidate (the live set shrinks,
                        // so this terminates).
                        self.declare_nxp_dead(hc, nc, f);
                        continue 'candidates;
                    }
                    return Err(RunError::LinkDead {
                        pid,
                        stage: "nxp-to-host",
                    });
                }
                if attempt > 1 {
                    self.stats.bump("retransmits");
                    self.trace.record_on(
                        CoreId::host(hc),
                        now,
                        Event::Retransmit {
                            to: Side::Nxp,
                            seq: desc.seq,
                            attempt,
                        },
                    );
                }
                if self.ring_sim_occupied(nc, now, timing.retry.ring_capacity)
                    || self.fabric.channel(nc).depth_to_nxp() >= timing.retry.ring_capacity
                {
                    self.stats.bump("admission_rejects");
                    self.trace
                        .record_on(CoreId::host(hc), now, Event::AdmissionRejected { chan: nc });
                    self.health.note_failure(nc);
                    self.hosts[hc]
                        .clock_mut()
                        .advance(timing.retry.backoff_for(attempt));
                    continue;
                }
                let (arrival, pert) =
                    self.fabric
                        .kick_to_nxp_faulty(nc, now, desc.to_bytes(), &mut self.plan);
                self.note_burst_faults(CoreId::host(hc), Side::Nxp, now, &pert);
                if pert.dropped {
                    self.health.note_failure(nc);
                    self.hosts[hc]
                        .clock_mut()
                        .advance(timing.retry.backoff_for(attempt));
                    continue;
                }
                match self.nxp_pickup(nc, arrival, desc.seq) {
                    Pickup::Accept(b, d) => break (b, d),
                    Pickup::Corrupt => {
                        self.health.note_failure(nc);
                        let t = self.nxps[nc].clock().now();
                        self.hosts[hc].clock_mut().sync_to(t);
                        self.hosts[hc].clock_mut().advance(timing.nak_path);
                    }
                    Pickup::Duplicate | Pickup::Dead => {
                        self.health.note_failure(nc);
                        self.hosts[hc]
                            .clock_mut()
                            .advance(timing.retry.backoff_for(attempt));
                    }
                }
            };
            return self.nxp_execute(hc, nc, pid, in_bytes, in_desc).map(Some);
        }
    }

    /// Drains the host descriptor ring: discards stale duplicates,
    /// NAKs corruption, and on a clean in-order descriptor copies it
    /// into the process page and wakes the thread.
    fn try_accept_host_desc(
        &mut self,
        hc: usize,
        chan: usize,
        pid: u64,
        timing: &OsTiming,
    ) -> Result<HostAccept, RunError> {
        loop {
            let now = self.hosts[hc].clock().now();
            // Several threads share the channel ring: take the first
            // due descriptor that concerns *this* wakeup — ours by
            // pid, a stale duplicate to drain, or a corrupt burst
            // (unattributable, so whoever looks first NAKs it).
            let seqs = &self.chans[chan];
            let Some(bytes) = self.fabric.take_host_desc_where(chan, now, |b| {
                match MigrationDescriptor::from_bytes_checked(b) {
                    Err(_) => true,
                    Ok(d) => seqs.host_has_accepted(d.seq) || d.pid == pid,
                }
            }) else {
                return Ok(HostAccept::Empty);
            };
            match MigrationDescriptor::from_bytes_checked(&bytes) {
                Err(_) => {
                    self.stats.bump("crc_rejects");
                    let seq = self
                        .retained_n2h
                        .get(&pid)
                        .and_then(|(_, b)| MigrationDescriptor::from_bytes(b))
                        .map_or(0, |d| d.seq);
                    self.trace.record_on(
                        CoreId::host(hc),
                        now,
                        Event::CorruptDescriptor { to: Side::Host, seq },
                    );
                    self.trace
                        .record_on(CoreId::host(hc), now, Event::NakSent { from: Side::Host, seq });
                    self.hosts[hc].clock_mut().advance(timing.nak_path);
                    return Ok(HostAccept::Corrupt);
                }
                Ok(d) if self.chans[chan].host_has_accepted(d.seq) => {
                    self.stats.bump("duplicate_descs_dropped");
                    self.trace.record_on(
                        CoreId::host(hc),
                        now,
                        Event::DuplicateDescriptor {
                            to: Side::Host,
                            seq: d.seq,
                        },
                    );
                    // The ring may also hold the real descriptor.
                    continue;
                }
                Ok(d) => {
                    self.chans[chan].host_mark_accepted(d.seq);
                    self.trace.record_on(
                        CoreId::host(hc),
                        now,
                        Event::DescriptorReceived {
                            to: Side::Host,
                            kind: d.kind.label(),
                        },
                    );
                    // Kernel copies the descriptor into the process
                    // page, wakes the thread by PID, and schedules it.
                    self.hosts[hc].clock_mut().advance(timing.desc_copy);
                    self.kernel
                        .write_user(&mut self.mem, pid, VirtAddr(layout::DESC_PAGE_VA), &bytes)
                        .map_err(RunError::Load)?;
                    self.hosts[hc].clock_mut().advance(timing.wakeup_and_schedule);
                    if !self.kernel.try_wake_from_migration(pid)? {
                        return Err(RunError::Protocol {
                            side: Side::Host,
                            context: "woken thread was not in migration wait",
                        });
                    }
                    self.trace.record_on(
                        CoreId::host(hc),
                        self.hosts[hc].clock().now(),
                        Event::ThreadWoken { pid },
                    );
                    if let Some(span) = self.span_of.remove(&pid) {
                        self.obs.mark(
                            span,
                            SpanStage::Woken,
                            self.hosts[hc].clock().now(),
                            CoreId::host(hc),
                        );
                        if let Some(s) = self.obs.finish(span) {
                            for (from, to) in s.segments() {
                                let key = format!(
                                    "seg:{}->{}",
                                    from.stage.label(),
                                    to.stage.label()
                                );
                                self.obs_stats
                                    .record_hist(&key, to.at.saturating_sub(from.at).as_picos());
                            }
                            self.obs_stats
                                .record_hist("span:total", s.total().as_picos());
                        }
                    }
                    self.retained_n2h.remove(&pid);
                    self.retained_h2n.remove(&pid);
                    self.health.note_activity(chan, now);
                    return Ok(HostAccept::Woken(d.seq));
                }
            }
        }
    }

    /// Graceful degradation: the link died while delivering a host→NxP
    /// *call*. Unwind the suspended thread out of the user-space
    /// migration handler frame (RA at `[sp+0]`, S0 at `[sp+8]`, 32-byte
    /// frame) and point it straight at the target function: the
    /// argument registers are restored from the descriptor and the
    /// restored RA returns to the original call site when the function
    /// returns. The thread is marked degraded, so its NX faults now run
    /// NxP text through the host-side interpreter instead of migrating.
    fn degrade_unwind(&mut self, hc: usize, pid: u64, desc: &MigrationDescriptor) -> Result<(), RunError> {
        self.stats.bump("migrations_degraded");
        self.trace.record_on(
            CoreId::host(hc),
            self.hosts[hc].clock().now(),
            Event::Degraded { pid },
        );
        let sp = self.kernel.task(pid)?.context.regs[abi::SP.index()];
        let mut ra = [0u8; 8];
        let mut s0 = [0u8; 8];
        self.kernel
            .read_user(&self.mem, pid, VirtAddr(sp), &mut ra)
            .map_err(RunError::Load)?;
        self.kernel
            .read_user(&self.mem, pid, VirtAddr(sp + 8), &mut s0)
            .map_err(RunError::Load)?;
        let task = self.kernel.task_mut(pid)?;
        task.degraded = true;
        task.deadline = None;
        task.context.regs[abi::RA.index()] = u64::from_le_bytes(ra);
        task.context.regs[abi::S0.index()] = u64::from_le_bytes(s0);
        task.context.regs[abi::SP.index()] = sp + 32;
        for (i, r) in [abi::A0, abi::A1, abi::A2, abi::A3, abi::A4, abi::A5]
            .into_iter()
            .enumerate()
        {
            task.context.regs[r.index()] = desc.args[i];
        }
        task.context.pc = VirtAddr(desc.target);
        if !self.kernel.try_wake_from_migration(pid)? {
            return Err(RunError::Protocol {
                side: Side::Host,
                context: "degraded thread was not in migration wait",
            });
        }
        Ok(())
    }

    /// Runs one segment of NxP text through the host-side interpreter
    /// core, from the faulting target until control returns to host
    /// text. Nested cross-ISA calls hand back and forth naturally: the
    /// interpreter faults `IsaMismatch` at host text and the native
    /// core faults `NxViolation` at NxP text.
    fn emulate_segment(&mut self, hc: usize, pid: u64, va: VirtAddr, fuel: u64) -> Result<(), RunError> {
        self.stats.bump("emulated_calls");
        self.trace.record_on(
            CoreId::host(hc),
            self.hosts[hc].clock().now(),
            Event::EmulatedSegment {
                pid,
                from_va: va.as_u64(),
            },
        );
        let host_cr3 = self.hosts[hc].cr3();
        let host_now = self.hosts[hc].clock().now();
        let mut ctx = self.hosts[hc].save_context();
        ctx.pc = va;
        // The guest ISA is whatever the faulting page is tagged with;
        // a cached emulator of another ISA retires (its instruction
        // count folds into the offset so the `executed()` invariant
        // holds) and a fresh core of the right ISA takes its slot.
        let tag = flick_paging::walk(|a| self.mem.read_u64(a), host_cr3, va)
            .map(|t| t.isa_tag)
            .unwrap_or(0);
        let guest = isa_from_tag(tag, &self.nxp_isas);
        if self.emus[hc]
            .as_ref()
            .is_some_and(|e| e.config().isa != guest)
        {
            let old = self.emus[hc].take().expect("emulator checked present");
            self.par_counter_offset += old.counters().instructions;
        }
        // The degraded-mode interpreter inherits the host's fast-path
        // setting so the differential tests cover it too.
        let fast_path = self.hosts[hc].config().fast_path;
        let emu = self.emus[hc].get_or_insert_with(|| {
            Core::new(CoreConfig {
                fast_path,
                ..CoreConfig::host_emulator_for(guest)
            })
        });
        emu.restore_context(&ctx);
        if emu.cr3() != host_cr3 {
            emu.set_cr3(host_cr3);
        }
        emu.clock_mut().sync_to(host_now);
        let mut left = fuel;
        loop {
            if left == 0 {
                return Err(RunError::FuelExhausted);
            }
            let emu = self.emus[hc].as_mut().ok_or(RunError::Protocol {
                side: Side::Host,
                context: "degraded thread without an emulation core",
            })?;
            let before = emu.counters().instructions;
            let stop = emu.run(&mut self.mem, &self.env, left);
            let ran = emu.counters().instructions - before;
            self.retired += ran;
            left = left.saturating_sub(ran);
            match stop {
                StopReason::Fault(Exception::InstFault {
                    va: back,
                    kind: InstFaultKind::IsaMismatch | InstFaultKind::NxViolation,
                }) => {
                    // Control reached text this emulator cannot speak —
                    // host text (`IsaMismatch`) or another
                    // accelerator's (`NxViolation`). Hand the context
                    // back to the native core; a cross-accelerator
                    // target re-faults there and re-enters emulation
                    // under the right guest ISA.
                    let mut ctx = emu.save_context();
                    ctx.pc = back;
                    let at = emu.clock().now();
                    self.hosts[hc].restore_context(&ctx);
                    self.hosts[hc].clock_mut().sync_to(at);
                    return Ok(());
                }
                StopReason::Ecall(s) if s == svc::ALLOC_NXP => {
                    let size = emu.reg(abi::A0);
                    let va = self
                        .kernel
                        .alloc_nxp_heap(pid, size)
                        .map_err(RunError::Load)?;
                    self.emus[hc]
                        .as_mut()
                        .ok_or(RunError::Protocol {
                            side: Side::Host,
                            context: "degraded thread without an emulation core",
                        })?
                        .set_reg(abi::A0, va.as_u64());
                }
                StopReason::Ecall(s) if s == svc::CLOCK_NS => {
                    let ns = emu.clock().now().as_nanos();
                    emu.set_reg(abi::A0, ns);
                }
                StopReason::Ecall(service) => {
                    return Err(RunError::UnknownService {
                        side: Side::Host,
                        service,
                    })
                }
                StopReason::Fault(exception) => {
                    return Err(RunError::Crash {
                        side: Side::Host,
                        exception,
                    })
                }
                StopReason::Halt => {
                    return Err(RunError::Crash {
                        side: Side::Host,
                        exception: Exception::InstFault {
                            va: emu.pc(),
                            kind: InstFaultKind::Illegal,
                        },
                    })
                }
                StopReason::OutOfFuel => return Err(RunError::FuelExhausted),
            }
        }
    }

    /// Installs a runnable task onto host core `hc` (context switch in).
    fn install_task(&mut self, hc: usize, pid: u64) -> Result<(), RunError> {
        let task = self.kernel.task_mut(pid)?;
        task.state = flick_os::TaskState::Running;
        let ctx = task.context.clone();
        let cr3 = task.cr3;
        self.hosts[hc].restore_context(&ctx);
        if self.hosts[hc].cr3() != cr3 {
            self.hosts[hc].set_cr3(cr3);
        }
        Ok(())
    }

    /// One NxP scheduler pickup of a host→NxP burst: poll the DMA
    /// status register, fetch the burst and validate its checksum and
    /// sequence number.
    fn nxp_pickup(&mut self, nc: usize, arrival: Picos, expect_seq: u64) -> Pickup {
        let nt = self.nxp_timing.clone();
        // The scheduler's poll loop observes the status register.
        let now = self.nxps[nc].clock().now().max(arrival);
        // A dead device never reaches its poll: the burst stays in the
        // ring and the device clock stays frozen. Checked before any
        // clock moves so failover replays bit-identically.
        if self.plan.device_state(nc, now).is_some() {
            return Pickup::Dead;
        }
        self.nxps[nc].clock_mut().sync_to(now + nt.poll_period);
        let Some(in_bytes) = self.fabric.poll_nxp(nc, self.nxps[nc].clock().now()) else {
            // Burst never queued — indistinguishable from a lost one.
            return Pickup::Corrupt;
        };
        match MigrationDescriptor::from_bytes_checked(&in_bytes) {
            Ok(d) if d.seq <= self.chans[nc].nxp_last => {
                self.stats.bump("duplicate_descs_dropped");
                self.trace.record_on(
                    CoreId::nxp(nc),
                    self.nxps[nc].clock().now(),
                    Event::DuplicateDescriptor {
                        to: Side::Nxp,
                        seq: d.seq,
                    },
                );
                Pickup::Duplicate
            }
            Ok(d) => {
                self.chans[nc].nxp_last = d.seq;
                self.trace.record_on(
                    CoreId::nxp(nc),
                    self.nxps[nc].clock().now(),
                    Event::DescriptorReceived {
                        to: Side::Nxp,
                        kind: d.kind.label(),
                    },
                );
                self.nxps[nc].clock_mut().advance(nt.dispatch);
                // Occupancy admission bookkeeping: this burst's ring
                // slot frees at the instant the scheduler picked it up.
                if let Some(occ) = self.ring_occupancy.as_mut() {
                    occ[nc].push_back(self.nxps[nc].clock().now());
                }
                // The wire bytes carry the span id, so the NxP side
                // attributes its mark without any host-side channel.
                self.obs.mark(
                    d.span,
                    SpanStage::NxpDispatch,
                    self.nxps[nc].clock().now(),
                    CoreId::nxp(nc),
                );
                // Sign of life: reset the failure streak; a pickup on a
                // half-open breaker is the probe succeeding.
                let was_probe = self.health.state(nc) == BreakerState::HalfOpen;
                self.health
                    .note_activity(nc, self.nxps[nc].clock().now());
                if was_probe {
                    self.stats.bump("nxp_probes_ok");
                    self.trace.record_on(
                        CoreId::nxp(nc),
                        self.nxps[nc].clock().now(),
                        Event::ProbeSucceeded { nxp: nc },
                    );
                }
                Pickup::Accept(in_bytes, d)
            }
            Err(_) => {
                // The link CRC caught in-flight corruption: NAK it.
                self.stats.bump("crc_rejects");
                self.trace.record_on(
                    CoreId::nxp(nc),
                    self.nxps[nc].clock().now(),
                    Event::CorruptDescriptor {
                        to: Side::Nxp,
                        seq: expect_seq,
                    },
                );
                self.trace.record_on(
                    CoreId::nxp(nc),
                    self.nxps[nc].clock().now(),
                    Event::NakSent {
                        from: Side::Nxp,
                        seq: expect_seq,
                    },
                );
                Pickup::Corrupt
            }
        }
    }

    /// The NxP side after a descriptor is accepted, serialized:
    /// dispatch the leg inline and join it immediately. Used by the
    /// failover re-execution path, which only exists under device
    /// fault plans — always serialized runs.
    fn nxp_execute(
        &mut self,
        hc: usize,
        nc: usize,
        pid: u64,
        in_bytes: Vec<u8>,
        desc: MigrationDescriptor,
    ) -> Result<PendingWake, RunError> {
        self.dispatch_leg(hc, nc, pid, in_bytes, desc)?
            .ok_or(RunError::Protocol {
                side: Side::Nxp,
                context: "failover leg dispatched asynchronously",
            })
    }

    /// True when host core `hc` has dispatched a leg that is still in
    /// flight — it must stay schedulable to eventually join it.
    fn has_inflight_for(&self, hc: usize) -> bool {
        self.in_flight.values().any(|l| l.hc == hc)
    }

    /// Joins every in-flight leg dispatched by `hc` whose *published*
    /// NxP clock is at or behind `hc`'s host clock. Such a leg's wake
    /// would already sit in the sequential engine's pending heap, so
    /// deferring its join any further could change a scheduling
    /// decision. The published clock only lags the leg's true clock
    /// (both are monotone), so a snapshot past `now` proves the wake
    /// is not yet due; a stale snapshot merely joins early — blocking
    /// until the leg lands — which never changes any observable.
    fn resolve_due_legs(&mut self, hc: usize) -> Result<(), RunError> {
        if self.in_flight.is_empty() {
            return Ok(());
        }
        let now = self.hosts[hc].clock().now();
        let mut due: Vec<usize> = self
            .in_flight
            .iter()
            .filter(|(_, l)| {
                l.hc == hc
                    && Picos(l.clock_pub.load(std::sync::atomic::Ordering::Relaxed)) <= now
            })
            .map(|(&c, _)| c)
            .collect();
        due.sort_unstable();
        for c in due {
            self.join_leg(c)?;
        }
        Ok(())
    }

    /// Joins every in-flight leg dispatched by `hc`, due or not — the
    /// idle path's conservative barrier before fast-forwarding.
    fn join_core_legs(&mut self, hc: usize) -> Result<(), RunError> {
        let mut chans: Vec<usize> = self
            .in_flight
            .iter()
            .filter(|(_, l)| l.hc == hc)
            .map(|(&c, _)| c)
            .collect();
        chans.sort_unstable();
        for c in chans {
            self.join_leg(c)?;
        }
        Ok(())
    }

    /// Joins every in-flight leg in the machine.
    fn join_all_legs(&mut self) -> Result<(), RunError> {
        let mut chans: Vec<usize> = self.in_flight.keys().copied().collect();
        chans.sort_unstable();
        for c in chans {
            self.join_leg(c)?;
        }
        Ok(())
    }

    /// Moves wakes produced by joins into the scheduler's pending
    /// heaps, with exactly the due computation of the sequential
    /// engine's suspend path.
    fn drain_ready_wakes(
        &mut self,
        pending: &mut [BinaryHeap<Reverse<(Picos, u64)>>],
        wakes: &mut HashMap<u64, PendingWake>,
    ) -> Result<(), RunError> {
        if self.ready_wakes.is_empty() {
            return Ok(());
        }
        for (hc, pid, wake) in std::mem::take(&mut self.ready_wakes) {
            let due = match wake.msi_at {
                Some(at) => at,
                None => self
                    .kernel
                    .task(pid)?
                    .deadline
                    .unwrap_or_else(|| self.hosts[hc].clock().now()),
            };
            pending[hc].push(Reverse((due, pid)));
            wakes.insert(pid, wake);
        }
        Ok(())
    }

    /// Dispatches one NxP leg. Serialized mode (the default, and every
    /// chaos/failover/bounded-fuel run) executes it inline over the
    /// whole machine memory and returns its wake — byte-identical to
    /// the historical inline `nxp_execute`. Pipelined mode ships the
    /// leg (core + the process's frames, moved; shared pages, copied)
    /// to a worker thread and returns `None`; the wake surfaces via
    /// `ready_wakes` when the leg joins.
    fn dispatch_leg(
        &mut self,
        hc: usize,
        nc: usize,
        pid: u64,
        in_bytes: Vec<u8>,
        desc: MigrationDescriptor,
    ) -> Result<Option<PendingWake>, RunError> {
        debug_assert!(
            !self.in_flight.contains_key(&nc),
            "channel must be quiescent before dispatch"
        );
        let pipelined = self.pipelined;
        let leg_id = self.next_leg_id;
        self.next_leg_id += 1;

        // Detach the NxP core, leaving a never-run spare in its slot.
        let spare = self.spares[nc]
            .take()
            .unwrap_or_else(|| Core::new(self.nxps[nc].config().clone()));
        let core = std::mem::replace(&mut self.nxps[nc], spare);
        let pre_insts = core.counters().instructions;
        self.par_counter_offset += pre_insts;

        let thread = self.nxp_rt.take_thread(pid);
        let task = self.kernel.task(pid)?;
        let nxp_stack_ptr = task.nxp_stack_ptr.as_u64();
        let nxp_brk = task.nxp_brk;
        let frame_ranges = task.frame_ranges.clone();
        // The leg runs on this slot's ISA: hand it that ISA's
        // migration handler pair. A program without functions of the
        // slot's ISA has no such handlers — any exec fault on the leg
        // then fails loudly instead of jumping through a wrong-ISA
        // handler.
        let handlers = self
            .vas
            .get(&pid)
            .and_then(|v| v.accel_handlers(self.nxp_isas[nc]))
            .map(|(entry, lp)| (lp, entry));
        let span = self.span_of.get(&pid).copied().unwrap_or(0);
        let desc_phys = self.nxp_desc_phys();
        let init_gen = self.mem.text_gen();

        let (mem, chunk_fuel) = if pipelined {
            let mut leg_mem = PhysMem::new();
            leg_mem.force_text_gen(init_gen);
            // The process's own frames (text, data, heap, page tables,
            // descriptor page) move with the leg.
            for &(start, len) in &frame_ranges {
                let frames = self.mem.take_range(start, len);
                leg_mem.adopt_frames(frames);
            }
            // The thread's SRAM stack slot is private: moved.
            if (layout::NXP_STACK_VA..layout::NXP_STACK_VA + layout::NXP_STACK_SIZE)
                .contains(&nxp_stack_ptr)
            {
                let slot = (nxp_stack_ptr - layout::NXP_STACK_VA) / layout::NXP_STACK_SLOT;
                let base = self.env.map.nxp_sram_host_base() + slot * layout::NXP_STACK_SLOT;
                leg_mem.adopt_frames(self.mem.take_range(base, layout::NXP_STACK_SLOT));
            }
            // The SRAM descriptor buffer page is shared by every
            // channel: copied (the leg overwrites it with its own
            // inbound descriptor before any read).
            leg_mem.adopt_frames(self.mem.clone_range(desc_phys, flick_mem::PAGE_SIZE));
            // The resident NxP-DRAM window (cross-process globals):
            // copied in, adopted back at join in deterministic join
            // order.
            let resident = nxp_brk.as_u64().saturating_sub(layout::NXP_WINDOW_VA);
            if resident > 0 {
                let bar0 = self.env.map.nxp_dram_host_base();
                leg_mem.adopt_frames(self.mem.clone_range(bar0, resident));
            }
            // Small chunks keep the published clock fresh enough for
            // the coordinator's due-join polling.
            (leg_mem, 65_536)
        } else {
            // Serialized: the leg owns the whole memory for its
            // (exclusive) duration, one run call per segment.
            (std::mem::replace(&mut self.mem, PhysMem::new()), u64::MAX / 2)
        };

        let clock_pub = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(
            core.clock().now().as_picos(),
        ));
        let job = leg::LegJob {
            leg_id,
            nc,
            pid,
            core,
            mem,
            env: self.env.clone(),
            timing: self.nxp_timing.clone(),
            in_bytes,
            desc,
            thread,
            handlers,
            nxp_stack_ptr,
            span,
            nxp_brk,
            desc_phys,
            chunk_fuel,
            clock_pub: clock_pub.clone(),
            panic_inject: std::mem::take(&mut self.kill_next_leg),
        };
        self.in_flight.insert(
            nc,
            InFlightLeg {
                leg_id,
                hc,
                pid,
                pre_insts,
                init_gen,
                trace_pos: self.trace.len(),
                whole_mem: !pipelined,
                clock_pub,
            },
        );
        if pipelined {
            self.par
                .as_ref()
                .ok_or(RunError::Protocol {
                    side: Side::Host,
                    context: "pipelined run without a worker engine",
                })?
                .submit(nc, job)?;
            Ok(None)
        } else {
            let res = leg::leg_run(job);
            self.parked.insert(leg_id, res);
            self.join_leg(nc)?;
            let (_, wpid, wake) = self.ready_wakes.pop().ok_or(RunError::Protocol {
                side: Side::Nxp,
                context: "serialized leg joined without producing a wake",
            })?;
            debug_assert_eq!(wpid, pid);
            Ok(Some(wake))
        }
    }

    /// Joins the in-flight leg on channel `nc` (no-op when there is
    /// none): re-attaches the core, memory, and thread state, splices
    /// the leg's trace events at its dispatch position, and performs
    /// the coordinator half of the send — sequence assignment, DMA
    /// kick, MSI — exactly as the sequential engine's `nxp_send` did.
    fn join_leg(&mut self, nc: usize) -> Result<(), RunError> {
        let Some(inf) = self.in_flight.remove(&nc) else {
            return Ok(());
        };
        let res = loop {
            if let Some(r) = self.parked.remove(&inf.leg_id) {
                break r;
            }
            let r = self
                .par
                .as_ref()
                .ok_or(RunError::Protocol {
                    side: Side::Nxp,
                    context: "in-flight leg with no worker engine",
                })?
                .recv()?;
            if r.leg_id == inf.leg_id {
                break r;
            }
            self.parked.insert(r.leg_id, r);
        };
        debug_assert_eq!(res.nc, nc);
        debug_assert_eq!(res.pid, inf.pid);
        let pid = res.pid;

        // Re-attach the core; its spare never ran, so counters are
        // exact with the dispatch-time offset removed.
        let spare = std::mem::replace(&mut self.nxps[nc], res.core);
        self.spares[nc] = Some(spare);
        self.par_counter_offset -= inf.pre_insts;
        self.retired += res.retired;

        // Re-attach memory. Sharded mode moves the frames back and
        // replays the leg's text-generation delta onto the global
        // counter, so decoded-code caches shared with other cores
        // invalidate exactly as if the writes had happened in place.
        if inf.whole_mem {
            self.mem = res.mem;
        } else {
            let leg_gen = res.mem.text_gen();
            let gen = self.mem.text_gen() + (leg_gen - inf.init_gen);
            self.mem.adopt_frames(res.mem.into_frames());
            self.mem.force_text_gen(gen);
        }

        self.nxp_rt.put_thread(pid, res.thread);
        self.kernel.task_mut(pid)?.nxp_brk = res.nxp_brk;
        if res.migrations_nxp_to_host > 0 {
            self.stats
                .bump_by("migrations_nxp_to_host", res.migrations_nxp_to_host);
        }
        if res.returns_nxp_to_host > 0 {
            self.stats
                .bump_by("returns_nxp_to_host", res.returns_nxp_to_host);
        }
        if res.nxp_exec_faults > 0 {
            self.stats.bump_by("nxp_exec_faults", res.nxp_exec_faults);
        }

        // Splice the leg's events where they belong: the trace length
        // at its dispatch. Later-dispatched in-flight legs splice
        // after these events, so their positions shift.
        let inserted = self.trace.splice_at(inf.trace_pos, res.events);
        if inserted > 0 {
            for other in self.in_flight.values_mut() {
                if (other.trace_pos, other.leg_id) > (inf.trace_pos, inf.leg_id) {
                    other.trace_pos += inserted;
                }
            }
        }

        let mut desc = res.outcome?;
        // A final return means the thread has left this NxP: pop its
        // innermost continuation. (An escalated call keeps the frame
        // parked here — the entry stays until that frame returns.)
        if desc.kind == DescKind::NxpToHostReturn {
            if let Some(stack) = self.nxp_of.get_mut(&pid) {
                stack.pop();
            }
        }
        // Coordinator half of the send (shared channel state).
        desc.seq = self.chans[nc].n2h;
        self.chans[nc].n2h += 1;
        let bytes = desc.to_bytes();
        if let Some(at) = res.submit_at {
            self.obs
                .mark(desc.span, SpanStage::NxpSubmit, at, CoreId::nxp(nc));
        }
        self.retained_n2h.insert(pid, (nc, bytes.clone()));
        let now = self.nxps[nc].clock().now();
        // A crashed or unplugged device cannot DMA its reply out — the
        // burst and its MSI die on the card. (A *hung* one still can:
        // the link is up, only the inbound poll loop stopped.) The
        // host-side watchdog notices the silence and fails over.
        let wake = if matches!(
            self.plan.device_state(nc, now),
            Some(DeviceFaultKind::Crash | DeviceFaultKind::Unplug)
        ) {
            PendingWake {
                msi_at: None,
                chan: nc,
                incarnation: self.chans[nc].incarnation,
            }
        } else {
            let (_arrival, maybe_msi, pert) =
                self.fabric
                    .kick_to_host_faulty(nc, now, bytes, &mut self.plan);
            if self.obs.enabled() {
                let depth = self.fabric.channel(nc).depth_to_host() as u64;
                self.obs_stats
                    .record_hist(&format!("qdepth:n2h:nxp{nc}"), depth);
            }
            self.note_burst_faults(CoreId::nxp(nc), Side::Host, now, &pert);
            let msi_at = maybe_msi.and_then(|msi| self.raise_msi(CoreId::nxp(nc), msi, now));
            PendingWake {
                msi_at,
                chan: nc,
                incarnation: self.chans[nc].incarnation,
            }
        };
        // In pipelined mode the dispatching ecall has long returned;
        // arm the watchdog here. Under an inert plan `msi_at` is
        // always `Some`, so the base — and therefore the deadline —
        // matches the sequential engine's to the picosecond.
        if !inf.whole_mem {
            let watchdog = self.kernel.timing().retry.migration_watchdog;
            let base = wake
                .msi_at
                .unwrap_or_else(|| now.max(self.hosts[inf.hc].clock().now()));
            self.kernel.task_mut(pid)?.deadline = Some(base + watchdog);
        }
        self.ready_wakes.push((inf.hc, pid, wake));
        Ok(())
    }

    /// Physical address of the NxP-side descriptor buffer (the SRAM
    /// page behind `layout::NXP_DESC_VA`).
    fn nxp_desc_phys(&self) -> PhysAddr {
        self.env.map.nxp_sram_host_base() + (layout::NXP_DESC_VA - layout::NXP_STACK_VA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_isa::{FuncBuilder, MemSize, TargetIsa};
    use flick_toolchain::{DataDef, Placement};

    fn machine() -> Machine {
        Machine::paper_default()
    }

    /// Builds, loads and runs a program; returns (machine, outcome).
    fn run_program(build: impl FnOnce(&mut ProgramBuilder)) -> (Machine, Outcome) {
        let mut p = ProgramBuilder::new("test");
        build(&mut p);
        let mut m = machine();
        let pid = m.load_program(&mut p).unwrap();
        let outcome = m.run(pid).unwrap();
        (m, outcome)
    }

    #[test]
    fn null_cross_call_round_trip() {
        let (m, out) = run_program(|p| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.li(abi::A0, 40);
            main.li(abi::A1, 2);
            main.call("nxp_add");
            main.call("flick_exit");
            p.func(main.finish());
            let mut f = FuncBuilder::new("nxp_add", TargetIsa::Nxp);
            f.add(abi::A0, abi::A0, abi::A1);
            f.ret();
            p.func(f.finish());
        });
        assert_eq!(out.exit_code, 42);
        assert_eq!(out.stats.get("migrations_host_to_nxp"), 1);
        assert_eq!(out.stats.get("returns_nxp_to_host"), 1);
        assert_eq!(out.stats.get("nx_faults"), 1);
        assert_eq!(out.stats.get("nxp_stack_allocs"), 1);
        // One round trip should land in the Table III ballpark.
        assert!(out.sim_time > Picos::from_micros(8), "{}", out.sim_time);
        assert!(out.sim_time < Picos::from_micros(60), "{}", out.sim_time);
        assert!(m.trace().count(|e| matches!(e, Event::NxFault { .. })) == 1);
    }

    #[test]
    fn repeated_migrations_reuse_stack() {
        let (_, out) = run_program(|p| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            let lp = main.new_label();
            main.li(abi::S1, 10);
            main.li(abi::S2, 0);
            main.bind(lp);
            main.mv(abi::A0, abi::S2);
            main.call("nxp_inc");
            main.mv(abi::S2, abi::A0);
            main.addi(abi::S1, abi::S1, -1);
            main.bne(abi::S1, abi::ZERO, lp);
            main.mv(abi::A0, abi::S2);
            main.call("flick_exit");
            p.func(main.finish());
            let mut f = FuncBuilder::new("nxp_inc", TargetIsa::Nxp);
            f.addi(abi::A0, abi::A0, 1);
            f.ret();
            p.func(f.finish());
        });
        assert_eq!(out.exit_code, 10);
        assert_eq!(out.stats.get("migrations_host_to_nxp"), 10);
        assert_eq!(out.stats.get("nxp_stack_allocs"), 1, "stack allocated once");
    }

    #[test]
    fn nxp_calls_host_function() {
        // main -> nxp_work -> host_double(21) -> back -> +0 -> exit 42.
        let (_, out) = run_program(|p| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.li(abi::A0, 21);
            main.call("nxp_work");
            main.call("flick_exit");
            p.func(main.finish());

            let mut w = FuncBuilder::new("nxp_work", TargetIsa::Nxp);
            w.prologue(16, &[]);
            w.call("host_double");
            w.epilogue(16, &[]);
            p.func(w.finish());

            let mut h = FuncBuilder::new("host_double", TargetIsa::Host);
            h.add(abi::A0, abi::A0, abi::A0);
            h.ret();
            p.func(h.finish());
        });
        assert_eq!(out.exit_code, 42);
        assert_eq!(out.stats.get("migrations_host_to_nxp"), 1);
        assert_eq!(out.stats.get("migrations_nxp_to_host"), 1);
        assert_eq!(out.stats.get("returns_host_to_nxp"), 1);
        assert_eq!(out.stats.get("returns_nxp_to_host"), 1);
        assert_eq!(out.stats.get("nxp_exec_faults"), 1);
    }

    #[test]
    fn cross_isa_recursion() {
        // Mutual recursion across the ISA boundary:
        // host_fact(n) = n == 0 ? 1 : n * nxp_fact(n-1)
        // nxp_fact(n)  = n == 0 ? 1 : n * host_fact(n-1)
        let (_, out) = run_program(|p| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.li(abi::A0, 6);
            main.call("host_fact");
            main.call("flick_exit");
            p.func(main.finish());

            for (name, callee, target) in [
                ("host_fact", "nxp_fact", TargetIsa::Host),
                ("nxp_fact", "host_fact", TargetIsa::Nxp),
            ] {
                let mut f = FuncBuilder::new(name, target);
                let base = f.new_label();
                f.prologue(32, &[abi::S1]);
                f.beq(abi::A0, abi::ZERO, base);
                f.mv(abi::S1, abi::A0);
                f.addi(abi::A0, abi::A0, -1);
                f.call(callee);
                f.mul(abi::A0, abi::A0, abi::S1);
                f.epilogue(32, &[abi::S1]);
                f.bind(base);
                f.li(abi::A0, 1);
                f.epilogue(32, &[abi::S1]);
                p.func(f.finish());
            }
        });
        assert_eq!(out.exit_code, 720);
        // 6 levels: nxp_fact called for n = 5, 3, 1 → 3 host→NxP calls.
        assert_eq!(out.stats.get("migrations_host_to_nxp"), 3);
        assert_eq!(out.stats.get("migrations_nxp_to_host"), 3); // n = 4, 2, 0
    }

    #[test]
    fn function_pointer_crosses_isa() {
        let (_, out) = run_program(|p| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.li_sym(abi::T3, "nxp_seven");
            main.call_reg(abi::T3);
            main.call("flick_exit");
            p.func(main.finish());
            let mut f = FuncBuilder::new("nxp_seven", TargetIsa::Nxp);
            f.li(abi::A0, 7);
            f.ret();
            p.func(f.finish());
        });
        assert_eq!(out.exit_code, 7);
        assert_eq!(out.stats.get("migrations_host_to_nxp"), 1);
    }

    #[test]
    fn nxp_reads_nxp_dram_data() {
        let (_, out) = run_program(|p| {
            p.data(
                DataDef::new("nxp_table", 99u64.to_le_bytes().to_vec())
                    .placed(Placement::NxpDram),
            );
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.call("nxp_read");
            main.call("flick_exit");
            p.func(main.finish());
            let mut f = FuncBuilder::new("nxp_read", TargetIsa::Nxp);
            f.li_sym(abi::T0, "nxp_table");
            f.ld(abi::A0, abi::T0, 0, MemSize::B8);
            f.ret();
            p.func(f.finish());
        });
        assert_eq!(out.exit_code, 99);
    }

    #[test]
    fn console_output_collected() {
        let (_, out) = run_program(|p| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.li(abi::A0, 123);
            main.call("flick_print_u64");
            main.li(abi::A0, 0);
            main.call("flick_exit");
            p.func(main.finish());
        });
        assert_eq!(out.console, vec!["123".to_string()]);
    }

    #[test]
    fn trace_sequences_migration_events() {
        let (m, _) = run_program(|p| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.call("nxp_nop");
            main.call("flick_exit");
            p.func(main.finish());
            let mut f = FuncBuilder::new("nxp_nop", TargetIsa::Nxp);
            f.ret();
            p.func(f.finish());
        });
        let kinds: Vec<&str> = m
            .trace()
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                Event::NxFault { .. } => Some("fault"),
                Event::ThreadSuspended { .. } => Some("suspend"),
                Event::DescriptorSent { from: Side::Host, .. } => Some("h-send"),
                Event::DescriptorReceived { to: Side::Nxp, .. } => Some("n-recv"),
                Event::DescriptorSent { from: Side::Nxp, .. } => Some("n-send"),
                Event::DescriptorReceived { to: Side::Host, .. } => Some("h-recv"),
                Event::ThreadWoken { .. } => Some("wake"),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "fault", "suspend", "h-send", "n-recv", "n-send", "h-recv", "wake"
            ]
        );
        // Timestamps are monotone across the whole sequence.
        let times: Vec<Picos> = m.trace().events().iter().map(|(t, _)| *t).collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1], "trace time went backwards");
        }
    }

    #[test]
    fn host_crash_reports_side_and_pc() {
        let mut p = ProgramBuilder::new("crash");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li(abi::A1, 0x1234_5678_0000u64 as i64); // unmapped
        main.ld(abi::A0, abi::A1, 0, MemSize::B8);
        main.call("flick_exit");
        p.func(main.finish());
        let mut m = machine();
        let pid = m.load_program(&mut p).unwrap();
        match m.run(pid) {
            Err(RunError::Crash { side: Side::Host, exception }) => {
                assert!(matches!(exception, Exception::DataFault { .. }));
            }
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn image_without_runtime_rejected() {
        let mut p = ProgramBuilder::new("bare");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.halt();
        p.func(main.finish());
        let image = p.build().unwrap();
        let mut m = machine();
        assert!(matches!(m.load(&image), Err(RunError::Build(_))));
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let mut p = ProgramBuilder::new("spin");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        let lp = main.new_label();
        main.bind(lp);
        main.jmp(lp);
        p.func(main.finish());
        let mut m = machine();
        let pid = m.load_program(&mut p).unwrap();
        assert!(matches!(
            m.run_with_fuel(pid, 10_000),
            Err(RunError::FuelExhausted)
        ));
    }

    #[test]
    fn two_processes_run_sequentially() {
        let build = |p: &mut ProgramBuilder, v: i64| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.li(abi::A0, v);
            main.call("nxp_id");
            main.call("flick_exit");
            p.func(main.finish());
            let mut f = FuncBuilder::new("nxp_id", TargetIsa::Nxp);
            f.ret();
            p.func(f.finish());
        };
        let mut m = machine();
        let mut p1 = ProgramBuilder::new("p1");
        build(&mut p1, 11);
        let mut p2 = ProgramBuilder::new("p2");
        build(&mut p2, 22);
        let pid1 = m.load_program(&mut p1).unwrap();
        let pid2 = m.load_program(&mut p2).unwrap();
        assert_eq!(m.run(pid1).unwrap().exit_code, 11);
        assert_eq!(m.run(pid2).unwrap().exit_code, 22);
    }

    /// A process that calls an NxP spin function `calls` times; each
    /// call keeps the NxP busy for a while, leaving the host core idle
    /// in single-process mode.
    #[test]
    fn dead_leg_worker_surfaces_as_error() {
        // A worker thread panicking mid-leg must degrade to a typed
        // RunError::WorkerDied, not abort the process.
        let mut m = Machine::builder()
            .topology(Topology::new(1, 1))
            .threads(2)
            .build();
        let mut p = migration_loop_program(4, 1_000, 0);
        let pid = m.load_program(&mut p).unwrap();
        m.kill_next_leg = true;
        let err = m.run_concurrent(&[pid], u64::MAX / 2).unwrap_err();
        assert!(
            matches!(err, RunError::WorkerDied { worker: 0 }),
            "expected WorkerDied, got {err:?}"
        );
        // The display form names the worker for operator logs.
        assert!(err.to_string().contains("leg worker thread 0 died"));
    }

    fn migration_loop_program(calls: i64, spin: i64, tag: i64) -> ProgramBuilder {
        let mut p = ProgramBuilder::new("loop");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        let lp = main.new_label();
        main.li(abi::S1, calls);
        main.li(abi::S2, 0);
        main.bind(lp);
        main.li(abi::A0, spin);
        main.call("nxp_spin");
        main.add(abi::S2, abi::S2, abi::A0);
        main.addi(abi::S1, abi::S1, -1);
        main.bne(abi::S1, abi::ZERO, lp);
        main.li(abi::T0, tag);
        main.add(abi::A0, abi::S2, abi::T0);
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_spin", TargetIsa::Nxp);
        let sl = f.new_label();
        let done = f.new_label();
        f.li(abi::T0, 0);
        f.bind(sl);
        f.bge(abi::T0, abi::A0, done);
        f.addi(abi::T0, abi::T0, 1);
        f.jmp(sl);
        f.bind(done);
        f.mv(abi::A0, abi::T0);
        f.ret();
        p.func(f.finish());
        p
    }

    #[test]
    fn concurrent_matches_single_process_semantics() {
        let mut m1 = machine();
        let mut p = migration_loop_program(5, 100, 7);
        let pid = m1.load_program(&mut p).unwrap();
        let serial = m1.run(pid).unwrap();

        let mut m2 = machine();
        let mut p = migration_loop_program(5, 100, 7);
        let pid = m2.load_program(&mut p).unwrap();
        let conc = m2.run_concurrent(&[pid], u64::MAX / 2).unwrap();
        assert_eq!(conc.len(), 1);
        assert_eq!(conc[0].1.exit_code, serial.exit_code);
        // Identical machinery → identical simulated time.
        assert_eq!(conc[0].1.sim_time, serial.sim_time);
    }

    #[test]
    fn concurrent_processes_overlap_host_and_nxp_time() {
        // Serial: run the two processes one after the other.
        let mut serial_m = machine();
        let mut p1 = migration_loop_program(8, 2_000, 1);
        let mut p2 = migration_loop_program(8, 2_000, 2);
        let a = serial_m.load_program(&mut p1).unwrap();
        let b = serial_m.load_program(&mut p2).unwrap();
        serial_m.run(a).unwrap();
        serial_m.run(b).unwrap();
        let serial_total = serial_m.host_now();

        // Concurrent: while one thread is on the NxP, the other runs.
        let mut conc_m = machine();
        let mut p1 = migration_loop_program(8, 2_000, 1);
        let mut p2 = migration_loop_program(8, 2_000, 2);
        let a = conc_m.load_program(&mut p1).unwrap();
        let b = conc_m.load_program(&mut p2).unwrap();
        let done = conc_m.run_concurrent(&[a, b], u64::MAX / 2).unwrap();
        let conc_total = conc_m.host_now();

        let codes: std::collections::HashMap<u64, u64> =
            done.iter().map(|(pid, o)| (*pid, o.exit_code)).collect();
        assert_eq!(codes[&a], 8 * 2_000 + 1);
        assert_eq!(codes[&b], 8 * 2_000 + 2);
        assert!(
            conc_total.as_nanos_f64() < serial_total.as_nanos_f64() * 0.9,
            "overlap expected: concurrent {conc_total} vs serial {serial_total}"
        );
    }

    #[test]
    fn three_processes_all_complete() {
        let mut m = machine();
        let mut pids = Vec::new();
        for tag in 0..3i64 {
            let mut p = migration_loop_program(3, 50, tag * 1000);
            pids.push(m.load_program(&mut p).unwrap());
        }
        let done = m.run_concurrent(&pids, u64::MAX / 2).unwrap();
        assert_eq!(done.len(), 3);
        for (pid, out) in &done {
            let idx = pids.iter().position(|p| p == pid).unwrap() as u64;
            assert_eq!(out.exit_code, 3 * 50 + idx * 1000);
        }
    }

    #[test]
    fn concurrent_fuel_exhaustion() {
        let mut m = machine();
        let mut p = migration_loop_program(1000, 1000, 0);
        let pid = m.load_program(&mut p).unwrap();
        assert!(matches!(
            m.run_concurrent(&[pid], 5_000),
            Err(RunError::FuelExhausted)
        ));
    }

    #[test]
    fn two_nxps_round_robin_uses_both() {
        use crate::topology::Topology;
        let mut m = Machine::builder().topology(Topology::new(1, 2)).build();
        let mut pids = Vec::new();
        for tag in 0..2i64 {
            let mut p = migration_loop_program(2, 100, tag * 1000);
            pids.push(m.load_program(&mut p).unwrap());
        }
        let done = m.run_concurrent(&pids, u64::MAX / 2).unwrap();
        assert_eq!(done.len(), 2);
        for (core, stats) in m.per_core_stats() {
            if core.side == Side::Nxp {
                assert!(stats.get("instructions") > 0, "{core} starved");
            }
        }
    }

    #[test]
    fn least_loaded_prefers_idle_nxp() {
        use crate::topology::{NxpPlacement, Topology};
        // One long call occupies NxP 0; the next call must land on the
        // idle NxP 1 because its clock is furthest behind.
        let mut m = Machine::builder()
            .topology(Topology::new(1, 2))
            .nxp_placement(NxpPlacement::LeastLoaded)
            .build();
        let mut p = migration_loop_program(2, 5_000, 0);
        let pid = m.load_program(&mut p).unwrap();
        m.run(pid).unwrap();
        let nxp_insts: Vec<u64> = m
            .per_core_stats()
            .into_iter()
            .filter(|(c, _)| c.side == Side::Nxp)
            .map(|(_, s)| s.get("instructions"))
            .collect();
        assert_eq!(nxp_insts.len(), 2);
        assert!(
            nxp_insts.iter().all(|&i| i > 0),
            "least-loaded alternates between the NxPs: {nxp_insts:?}"
        );
    }

    #[test]
    fn outcome_merges_core_stats() {
        let (_, out) = run_program(|p| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.call("nxp_three");
            main.call("flick_exit");
            p.func(main.finish());
            let mut f = FuncBuilder::new("nxp_three", TargetIsa::Nxp);
            f.li(abi::A0, 3);
            f.ret();
            p.func(f.finish());
        });
        assert!(out.stats.get("instructions") > 0, "host instructions");
        assert!(out.stats.get("nxp_instructions") > 0, "nxp instructions");
        assert!(out.stats.get("nxp_itlb_misses") > 0);
    }
}
