//! Sparse physical memory backing store.

use crate::addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
use crate::hash::U64BuildHasher;
use std::collections::HashMap;

/// One resident frame: its bytes plus a *watched* flag. Watched frames
/// are the ones some host-side structure (the cores' decoded-instruction
/// caches) derived state from; any write to a watched frame bumps the
/// store's [text generation](PhysMem::text_gen) so the derived state can
/// be discarded. The flag costs nothing on the write path — the frame is
/// already in hand when the bytes land.
///
/// The type is public but opaque: frames only leave a [`PhysMem`]
/// through [`PhysMem::take_range`] / [`PhysMem::clone_range`] and come
/// back through [`PhysMem::adopt_frames`], so the watched flag travels
/// with the bytes and callers cannot forge either.
pub struct Frame {
    data: Box<[u8; PAGE_SIZE as usize]>,
    watched: bool,
}

impl Frame {
    fn new() -> Self {
        Frame {
            data: Box::new([0u8; PAGE_SIZE as usize]),
            watched: false,
        }
    }
}

impl Clone for Frame {
    fn clone(&self) -> Self {
        Frame {
            data: self.data.clone(),
            watched: self.watched,
        }
    }
}

/// Byte-addressable sparse physical memory.
///
/// Frames are allocated lazily on first write; reads of untouched memory
/// return zeroes (deterministic, unlike real DRAM). One `PhysMem` backs
/// the entire unified physical address space — host DRAM and NxP DRAM are
/// the *same store* at different addresses, which is exactly the
/// unified-physical-space property Flick relies on.
///
/// # Examples
///
/// ```
/// use flick_mem::{PhysAddr, PhysMem};
///
/// let mut mem = PhysMem::new();
/// mem.write_u32(PhysAddr(0x1000), 0xABCD_EF01);
/// assert_eq!(mem.read_u32(PhysAddr(0x1000)), 0xABCD_EF01);
/// assert_eq!(mem.read_u32(PhysAddr(0x9999_9000)), 0); // untouched
/// ```
#[derive(Default)]
pub struct PhysMem {
    frames: HashMap<u64, Frame, U64BuildHasher>,
    /// Bumped on every write that touches a watched frame. Consumers
    /// that cache data derived from watched frames (decoded-instruction
    /// caches) compare this against their snapshot: one integer compare
    /// per use, regardless of how many pages they cached.
    text_gen: u64,
}

impl std::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysMem")
            .field("resident_frames", &self.frames.len())
            .finish()
    }
}

impl PhysMem {
    /// Creates an empty store.
    pub fn new() -> Self {
        PhysMem::default()
    }

    /// Number of frames touched so far (for memory-footprint assertions).
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    fn frame(&self, fno: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.frames.get(&fno).map(|fr| &*fr.data)
    }

    /// Mutable frame access for writers. Bumps the text generation when
    /// the frame is watched — the caller is about to scribble on it.
    fn frame_mut(&mut self, fno: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let fr = self.frames.entry(fno).or_insert_with(Frame::new);
        if fr.watched {
            self.text_gen += 1;
        }
        &mut fr.data
    }

    /// Marks the frame containing `addr` as watched: any later write to
    /// it bumps [`text_gen`](Self::text_gen). Used by decoded-instruction
    /// caches to detect self-modifying / reloaded code.
    pub fn watch_text(&mut self, addr: PhysAddr) {
        self.frames
            .entry(addr.as_u64() >> PAGE_SHIFT)
            .or_insert_with(Frame::new)
            .watched = true;
    }

    /// Whether the frame containing `addr` is watched. The basic-block
    /// engine marks every page it decodes a block from; tests use this
    /// to assert the watch actually landed (a missed watch would let a
    /// self-modified block replay stale instructions).
    pub fn watched(&self, addr: PhysAddr) -> bool {
        self.frames
            .get(&(addr.as_u64() >> PAGE_SHIFT))
            .is_some_and(|fr| fr.watched)
    }

    /// Generation counter for writes into watched frames. Cached decode
    /// state is valid only while this value is unchanged. Inlined: the
    /// chain lane re-reads it after every followed block.
    #[inline]
    pub fn text_gen(&self) -> u64 {
        self.text_gen
    }

    /// Overwrites the text generation. Used by the parallel migration
    /// engine: a detached leg store starts from the global generation
    /// and the coordinator folds the leg's delta back at join time, so
    /// decode caches see exactly the generation history the sequential
    /// interleaving would have produced.
    pub fn force_text_gen(&mut self, gen: u64) {
        self.text_gen = gen;
    }

    /// Removes and returns every *resident* frame overlapping
    /// `[start, start + len)`, keyed by frame number. Unmaterialized
    /// frames in the range are simply absent from the result — a store
    /// that later [adopts](Self::adopt_frames) the result reproduces the
    /// same read-as-zero behaviour for them. Watched flags travel with
    /// the frames; the text generation is *not* bumped (no bytes
    /// change).
    pub fn take_range(&mut self, start: PhysAddr, len: u64) -> Vec<(u64, Frame)> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let first = start.as_u64() >> PAGE_SHIFT;
        let last = (start.as_u64() + len - 1) >> PAGE_SHIFT;
        for fno in first..=last {
            if let Some(fr) = self.frames.remove(&fno) {
                out.push((fno, fr));
            }
        }
        out
    }

    /// Clones every resident frame overlapping `[start, start + len)`.
    /// Used for ranges a leg must *see* but that stay resident in the
    /// global store (the shared NxP SRAM descriptor page, the resident
    /// device-window span); the leg's copies overwrite the originals at
    /// join time in deterministic join order.
    pub fn clone_range(&self, start: PhysAddr, len: u64) -> Vec<(u64, Frame)> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let first = start.as_u64() >> PAGE_SHIFT;
        let last = (start.as_u64() + len - 1) >> PAGE_SHIFT;
        for fno in first..=last {
            if let Some(fr) = self.frames.get(&fno) {
                out.push((fno, fr.clone()));
            }
        }
        out
    }

    /// Inserts frames produced by [`take_range`](Self::take_range) /
    /// [`clone_range`](Self::clone_range), overwriting any resident
    /// frame with the same number. Watched flags come from the adopted
    /// frames; the text generation is *not* bumped — writes that
    /// happened while the frames were detached already bumped the leg
    /// store's generation, and the coordinator folds that delta in via
    /// [`force_text_gen`](Self::force_text_gen).
    pub fn adopt_frames(&mut self, frames: Vec<(u64, Frame)>) {
        for (fno, fr) in frames {
            self.frames.insert(fno, fr);
        }
    }

    /// Consumes the store and returns every resident frame. The final
    /// step of joining a detached leg store back into the global one.
    pub fn into_frames(self) -> Vec<(u64, Frame)> {
        self.frames.into_iter().collect()
    }

    /// Reads `buf.len()` bytes starting at `addr`, crossing frames as
    /// needed.
    pub fn read_bytes(&self, addr: PhysAddr, buf: &mut [u8]) {
        let mut a = addr.as_u64();
        let mut off = 0usize;
        while off < buf.len() {
            let fno = a >> PAGE_SHIFT;
            let in_page = (a & (PAGE_SIZE - 1)) as usize;
            let n = (buf.len() - off).min(PAGE_SIZE as usize - in_page);
            match self.frame(fno) {
                Some(fr) => buf[off..off + n].copy_from_slice(&fr[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
            a += n as u64;
        }
    }

    /// Writes `buf` starting at `addr`, crossing frames as needed.
    pub fn write_bytes(&mut self, addr: PhysAddr, buf: &[u8]) {
        let mut a = addr.as_u64();
        let mut off = 0usize;
        while off < buf.len() {
            let fno = a >> PAGE_SHIFT;
            let in_page = (a & (PAGE_SIZE - 1)) as usize;
            let n = (buf.len() - off).min(PAGE_SIZE as usize - in_page);
            self.frame_mut(fno)[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            off += n;
            a += n as u64;
        }
    }

    /// Fills `len` bytes starting at `addr` with `byte`.
    pub fn fill(&mut self, addr: PhysAddr, len: u64, byte: u8) {
        let mut a = addr.as_u64();
        let end = a + len;
        while a < end {
            let fno = a >> PAGE_SHIFT;
            let in_page = (a & (PAGE_SIZE - 1)) as usize;
            let n = ((end - a) as usize).min(PAGE_SIZE as usize - in_page);
            self.frame_mut(fno)[in_page..in_page + n].fill(byte);
            a += n as u64;
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b);
        b[0]
    }

    /// Reads a little-endian u16.
    pub fn read_u16(&self, addr: PhysAddr) -> u16 {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: PhysAddr, v: u8) {
        self.write_bytes(addr, &[v]);
    }

    /// Writes a little-endian u16.
    pub fn write_u16(&mut self, addr: PhysAddr, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: PhysAddr, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: PhysAddr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_first_read() {
        let mem = PhysMem::new();
        assert_eq!(mem.read_u64(PhysAddr(0x12345)), 0);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn read_back_written_values() {
        let mut mem = PhysMem::new();
        mem.write_u8(PhysAddr(1), 0x11);
        mem.write_u16(PhysAddr(2), 0x2222);
        mem.write_u32(PhysAddr(4), 0x3333_3333);
        mem.write_u64(PhysAddr(8), 0x4444_4444_4444_4444);
        assert_eq!(mem.read_u8(PhysAddr(1)), 0x11);
        assert_eq!(mem.read_u16(PhysAddr(2)), 0x2222);
        assert_eq!(mem.read_u32(PhysAddr(4)), 0x3333_3333);
        assert_eq!(mem.read_u64(PhysAddr(8)), 0x4444_4444_4444_4444);
    }

    #[test]
    fn cross_page_transfer() {
        let mut mem = PhysMem::new();
        let addr = PhysAddr(PAGE_SIZE - 3);
        let data: Vec<u8> = (0..16).collect();
        mem.write_bytes(addr, &data);
        let mut back = vec![0u8; 16];
        mem.read_bytes(addr, &mut back);
        assert_eq!(back, data);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn fill_spans_pages() {
        let mut mem = PhysMem::new();
        mem.fill(PhysAddr(PAGE_SIZE - 8), 16, 0xAB);
        assert_eq!(mem.read_u8(PhysAddr(PAGE_SIZE - 1)), 0xAB);
        assert_eq!(mem.read_u8(PhysAddr(PAGE_SIZE)), 0xAB);
        assert_eq!(mem.read_u8(PhysAddr(PAGE_SIZE + 8)), 0);
    }

    #[test]
    fn sparse_far_apart_addresses() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr(0), 1);
        mem.write_u64(PhysAddr(0x1_0000_0000), 2); // 4 GiB away
        assert_eq!(mem.read_u64(PhysAddr(0)), 1);
        assert_eq!(mem.read_u64(PhysAddr(0x1_0000_0000)), 2);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn watched_frames_bump_text_gen() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr(0x1000), 1);
        mem.write_u64(PhysAddr(0x2000), 2);
        let g0 = mem.text_gen();
        mem.watch_text(PhysAddr(0x1008)); // watches the whole 0x1000 frame
        assert!(mem.watched(PhysAddr(0x1FFF)));
        assert!(!mem.watched(PhysAddr(0x2000)));

        // Writes to unwatched frames leave the generation alone.
        mem.write_u64(PhysAddr(0x2000), 3);
        assert_eq!(mem.text_gen(), g0);

        // Any write into the watched frame bumps it.
        mem.write_u8(PhysAddr(0x1FFF), 7);
        assert!(mem.text_gen() > g0);

        // Reads never bump.
        let g1 = mem.text_gen();
        let _ = mem.read_u64(PhysAddr(0x1000));
        assert_eq!(mem.text_gen(), g1);

        // Watching an untouched frame materializes it zeroed.
        mem.watch_text(PhysAddr(0x9000));
        assert_eq!(mem.read_u64(PhysAddr(0x9000)), 0);
        mem.fill(PhysAddr(0x9000), 16, 0xEE);
        assert!(mem.text_gen() > g1);
    }

    #[test]
    fn take_adopt_round_trip_preserves_bytes_watched_and_gen() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr(0x1000), 0xAA);
        mem.write_u64(PhysAddr(0x3000), 0xBB);
        mem.watch_text(PhysAddr(0x1000));
        let g0 = mem.text_gen();

        // Detach the 0x1000 frame into a leg-private store.
        let taken = mem.take_range(PhysAddr(0x1000), PAGE_SIZE);
        assert_eq!(taken.len(), 1);
        assert_eq!(mem.read_u64(PhysAddr(0x1000)), 0, "taken frame reads as zero");
        assert_eq!(mem.text_gen(), g0, "take does not bump the generation");

        let mut leg = PhysMem::new();
        leg.force_text_gen(g0);
        leg.adopt_frames(taken);
        assert_eq!(leg.read_u64(PhysAddr(0x1000)), 0xAA);
        assert!(leg.watched(PhysAddr(0x1000)), "watched flag travels");
        leg.write_u64(PhysAddr(0x1000), 0xCC); // watched write bumps leg gen
        assert!(leg.text_gen() > g0);
        let leg_gen = leg.text_gen();

        // Join: fold the delta, move the frames back.
        mem.force_text_gen(g0 + (leg_gen - g0));
        mem.adopt_frames(leg.into_frames());
        assert_eq!(mem.read_u64(PhysAddr(0x1000)), 0xCC);
        assert_eq!(mem.read_u64(PhysAddr(0x3000)), 0xBB);
        assert!(mem.watched(PhysAddr(0x1000)));
        assert_eq!(mem.text_gen(), leg_gen);

        // clone_range leaves the original resident.
        let copies = mem.clone_range(PhysAddr(0x3000), 8);
        assert_eq!(copies.len(), 1);
        assert_eq!(mem.read_u64(PhysAddr(0x3000)), 0xBB);
    }

    #[test]
    fn misaligned_word_access() {
        let mut mem = PhysMem::new();
        mem.write_u64(PhysAddr(0x1003), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(PhysAddr(0x1003)), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(PhysAddr(0x1003)), 0x08); // little endian
    }
}
