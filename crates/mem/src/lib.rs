#![warn(missing_docs)]
//! Memory substrate: addresses, the unified physical memory map, sparse
//! backing storage and the NUMA latency model.
//!
//! Flick's central hardware requirement (§III-A of the paper) is a
//! *unified physical memory space*: host DRAM appears at the same
//! physical addresses from both the host CPUs and the NxP, and the NxP's
//! local DRAM is exported to the host through a PCIe BAR so that one
//! physical address names one storage location system-wide.
//!
//! * [`addr`] — [`PhysAddr`] / [`VirtAddr`] newtypes.
//! * [`region`] — the [`SystemMap`]: where host DRAM, the NxP DRAM BAR
//!   and NxP peripherals live in the host-view physical address space,
//!   plus the NxP-local view and the BAR remap rule (paper Fig. 3).
//! * [`phys`] — [`PhysMem`], a sparse page-granular byte store.
//! * [`latency`] — [`LatencyModel`]: per-(requester, target-region)
//!   access costs calibrated to the paper's measurements (825 ns host →
//!   NxP storage round trip, 267 ns NxP → NxP storage).
//!
//! # Examples
//!
//! ```
//! use flick_mem::{PhysMem, SystemMap};
//!
//! let map = SystemMap::paper_default();
//! let mut mem = PhysMem::new();
//! let a = map.nxp_dram_host_base(); // BAR0 window into NxP DRAM
//! mem.write_u64(a, 0xDEADBEEF);
//! assert_eq!(mem.read_u64(a), 0xDEADBEEF);
//! ```

pub mod addr;
pub mod hash;
pub mod latency;
pub mod phys;
pub mod region;

pub use addr::{PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
pub use hash::{U64BuildHasher, U64Hasher};
pub use latency::{AccessKind, LatencyModel, Requester};
pub use phys::PhysMem;
pub use region::{Region, SystemMap};
