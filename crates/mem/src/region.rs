//! The unified physical memory map and BAR remapping (paper Fig. 3).
//!
//! Host-view physical layout (defaults mirror the paper's example):
//!
//! ```text
//! 0x0000_0000 .. 0x8000_0000   host DRAM (2 GiB modelled)
//! 0x9000_0000 .. 0x9100_0000   BAR1: NxP SRAM (on-chip BRAM stacks)
//! 0x9100_0000 .. 0x9101_0000   BAR2: NxP MMIO (DMA / TLB-remap / doorbell)
//! 0x1_0000_0000 .. 0x2_0000_0000 BAR0: NxP DRAM (4 GiB DDR3)
//! ```
//!
//! The NxP-local bus sees host DRAM at the same addresses starting at 0
//! (through the PCIe bridge) but its own resources at *local* addresses
//! (DRAM at `0x8000_0000`, SRAM at `0x7000_0000`, MMIO at `0x6000_0000`).
//! Because BAR addresses are assigned dynamically by the host, the NxP TLB
//! carries driver-programmed remap windows that rewrite a host-view
//! physical address into the local bus address (§IV-A).

use crate::addr::PhysAddr;
use std::fmt;

/// Classification of a physical address by the system component that
/// backs it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// Host DDR4 DRAM.
    HostDram,
    /// NxP-side DDR3 DRAM (the 4 GiB data storage), reached through BAR0
    /// from the host.
    NxpDram,
    /// NxP on-chip block RAM used for the per-thread NxP stacks.
    NxpSram,
    /// NxP control registers (DMA engine, TLB remap, doorbells).
    NxpMmio,
    /// Nothing decodes this address.
    Unmapped,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::HostDram => "host-dram",
            Region::NxpDram => "nxp-dram",
            Region::NxpSram => "nxp-sram",
            Region::NxpMmio => "nxp-mmio",
            Region::Unmapped => "unmapped",
        };
        write!(f, "{s}")
    }
}

/// One BAR remap window programmed into the NxP TLB by the host driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemapWindow {
    /// Host-view base of the window (the BAR address the host assigned).
    pub host_base: PhysAddr,
    /// Window size in bytes.
    pub size: u64,
    /// NxP-local bus base the window maps to.
    pub local_base: PhysAddr,
}

impl RemapWindow {
    /// True when `addr` (host view) falls inside this window.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr >= self.host_base && addr.as_u64() < self.host_base.as_u64() + self.size
    }

    /// Rewrites a host-view address into the local bus address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the window.
    pub fn to_local(&self, addr: PhysAddr) -> PhysAddr {
        assert!(self.contains(addr), "{addr} outside remap window");
        self.local_base + (addr - self.host_base)
    }
}

/// The system physical memory map: region bases/sizes in both the host
/// view and the NxP-local view.
///
/// # Examples
///
/// ```
/// use flick_mem::{PhysAddr, Region, SystemMap};
///
/// let map = SystemMap::paper_default();
/// assert_eq!(map.classify(PhysAddr(0x1000)), Region::HostDram);
/// assert_eq!(map.classify(map.nxp_dram_host_base()), Region::NxpDram);
/// // The remap rule of Fig. 3: BAR0 host address -> NxP local address.
/// let local = map.host_to_local(map.nxp_dram_host_base());
/// assert_eq!(local, map.nxp_dram_local_base());
/// ```
#[derive(Clone, Debug)]
pub struct SystemMap {
    host_dram_size: u64,
    bar0: RemapWindow,
    bar1: RemapWindow,
    bar2: RemapWindow,
}

impl SystemMap {
    /// NxP-local base of the NxP DRAM (fixed by the FPGA design).
    pub const NXP_DRAM_LOCAL_BASE: PhysAddr = PhysAddr(0x8000_0000);
    /// NxP-local base of the stack SRAM.
    pub const NXP_SRAM_LOCAL_BASE: PhysAddr = PhysAddr(0x7000_0000);
    /// NxP-local base of the control registers.
    pub const NXP_MMIO_LOCAL_BASE: PhysAddr = PhysAddr(0x6000_0000);

    /// The configuration used throughout the reproduction: 2 GiB host
    /// DRAM, 4 GiB NxP DRAM behind BAR0 at `0x1_0000_0000` (PCIe BARs are
    /// naturally aligned, so a 4 GiB BAR sits on a 4 GiB boundary — which
    /// also lets the host map it with 1 GiB huge pages), 16 MiB stack
    /// SRAM behind BAR1, 64 KiB of control registers behind BAR2.
    pub fn paper_default() -> Self {
        SystemMap::with_bar0_base(PhysAddr(0x1_0000_0000))
    }

    /// Same layout but with a caller-chosen BAR0 base, modelling the fact
    /// that the host assigns BAR addresses dynamically and the driver must
    /// program the remap accordingly.
    pub fn with_bar0_base(bar0_base: PhysAddr) -> Self {
        let host_dram_size = 0x8000_0000; // 2 GiB
        assert!(
            bar0_base.as_u64() >= host_dram_size,
            "BAR0 must not overlap host DRAM"
        );
        assert!(
            bar0_base.is_aligned(4 << 30),
            "a 4 GiB BAR is naturally aligned by PCIe"
        );
        SystemMap {
            host_dram_size,
            bar0: RemapWindow {
                host_base: bar0_base,
                size: 4 << 30,
                local_base: Self::NXP_DRAM_LOCAL_BASE,
            },
            bar1: RemapWindow {
                host_base: PhysAddr(0x9000_0000),
                size: 16 << 20,
                local_base: Self::NXP_SRAM_LOCAL_BASE,
            },
            bar2: RemapWindow {
                host_base: PhysAddr(0x9100_0000),
                size: 64 << 10,
                local_base: Self::NXP_MMIO_LOCAL_BASE,
            },
        }
    }

    /// Host DRAM size in bytes.
    pub fn host_dram_size(&self) -> u64 {
        self.host_dram_size
    }

    /// Host-view base of the NxP DRAM window (BAR0).
    pub fn nxp_dram_host_base(&self) -> PhysAddr {
        self.bar0.host_base
    }

    /// NxP DRAM size in bytes.
    pub fn nxp_dram_size(&self) -> u64 {
        self.bar0.size
    }

    /// NxP-local base of the NxP DRAM.
    pub fn nxp_dram_local_base(&self) -> PhysAddr {
        self.bar0.local_base
    }

    /// Host-view base of the NxP stack SRAM (BAR1).
    pub fn nxp_sram_host_base(&self) -> PhysAddr {
        self.bar1.host_base
    }

    /// NxP stack SRAM size in bytes.
    pub fn nxp_sram_size(&self) -> u64 {
        self.bar1.size
    }

    /// Host-view base of the NxP control registers (BAR2).
    pub fn nxp_mmio_host_base(&self) -> PhysAddr {
        self.bar2.host_base
    }

    /// The remap windows the driver programs into the NxP TLB.
    pub fn remap_windows(&self) -> [RemapWindow; 3] {
        [self.bar0, self.bar1, self.bar2]
    }

    /// Classifies a host-view physical address.
    pub fn classify(&self, addr: PhysAddr) -> Region {
        if addr.as_u64() < self.host_dram_size {
            Region::HostDram
        } else if self.bar0.contains(addr) {
            Region::NxpDram
        } else if self.bar1.contains(addr) {
            Region::NxpSram
        } else if self.bar2.contains(addr) {
            Region::NxpMmio
        } else {
            Region::Unmapped
        }
    }

    /// Applies the NxP TLB remap: rewrites a host-view physical address
    /// into the NxP-local bus address (identity for host DRAM, window
    /// translation for BAR regions).
    ///
    /// Returns `None` for addresses no NxP bus target decodes.
    pub fn host_to_local_checked(&self, addr: PhysAddr) -> Option<PhysAddr> {
        match self.classify(addr) {
            Region::HostDram => Some(addr),
            Region::NxpDram => Some(self.bar0.to_local(addr)),
            Region::NxpSram => Some(self.bar1.to_local(addr)),
            Region::NxpMmio => Some(self.bar2.to_local(addr)),
            Region::Unmapped => None,
        }
    }

    /// Like [`host_to_local_checked`](Self::host_to_local_checked) but
    /// panics on unmapped addresses.
    ///
    /// # Panics
    ///
    /// Panics if nothing decodes `addr`.
    pub fn host_to_local(&self, addr: PhysAddr) -> PhysAddr {
        self.host_to_local_checked(addr)
            .unwrap_or_else(|| panic!("no NxP bus target decodes {addr}"))
    }

    /// The inverse rewrite: an NxP-local bus address back to the host
    /// view (used when the NxP masters a PCIe transaction toward a BAR
    /// alias, and by tests).
    pub fn local_to_host(&self, local: PhysAddr) -> Option<PhysAddr> {
        if local.as_u64() < self.host_dram_size {
            return Some(local);
        }
        for w in self.remap_windows() {
            if local >= w.local_base && local.as_u64() < w.local_base.as_u64() + w.size {
                return Some(w.host_base + (local - w.local_base));
            }
        }
        None
    }
}

impl Default for SystemMap {
    fn default() -> Self {
        SystemMap::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_regions() {
        let m = SystemMap::paper_default();
        assert_eq!(m.classify(PhysAddr(0)), Region::HostDram);
        assert_eq!(m.classify(PhysAddr(0x7FFF_FFFF)), Region::HostDram);
        assert_eq!(m.classify(PhysAddr(0x9000_0000)), Region::NxpSram);
        assert_eq!(m.classify(PhysAddr(0x9100_0008)), Region::NxpMmio);
        assert_eq!(m.classify(PhysAddr(0x1_0000_0000)), Region::NxpDram);
        assert_eq!(m.classify(PhysAddr(0x1_FFFF_FFFF)), Region::NxpDram);
        assert_eq!(m.classify(PhysAddr(0x2_0000_0000)), Region::Unmapped);
        assert_eq!(m.classify(PhysAddr(0x8800_0000)), Region::Unmapped);
    }

    #[test]
    fn remap_round_trips() {
        let m = SystemMap::paper_default();
        let host = PhysAddr(0x1_0000_0000 + 0x1234);
        let local = m.host_to_local(host);
        assert_eq!(local, PhysAddr(0x8000_1234));
        assert_eq!(m.local_to_host(local), Some(host));
    }

    #[test]
    fn host_dram_identity_remap() {
        let m = SystemMap::paper_default();
        let a = PhysAddr(0x1000);
        assert_eq!(m.host_to_local(a), a);
        assert_eq!(m.local_to_host(a), Some(a));
    }

    #[test]
    fn dynamic_bar_assignment_changes_offset() {
        // The paper's Fig. 3 point: BAR base is host-assigned, the remap
        // register absorbs the difference.
        let m = SystemMap::with_bar0_base(PhysAddr(0x2_0000_0000));
        let host = PhysAddr(0x2_0000_0000);
        assert_eq!(m.host_to_local(host), SystemMap::NXP_DRAM_LOCAL_BASE);
    }

    #[test]
    #[should_panic(expected = "BAR0 must not overlap host DRAM")]
    fn bar0_overlap_rejected() {
        SystemMap::with_bar0_base(PhysAddr(0x4000_0000));
    }

    #[test]
    fn unmapped_remap_is_none() {
        let m = SystemMap::paper_default();
        assert_eq!(m.host_to_local_checked(PhysAddr(0x2_0000_0000)), None);
        // Local view: [0, 2 GiB) is host DRAM through the bridge, so the
        // first locally-unmapped address is above the DRAM window.
        assert_eq!(m.local_to_host(PhysAddr(0x5_0000_0000)), None);
    }
}
