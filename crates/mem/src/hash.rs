//! A fast, deterministic hasher for `u64` keys (frame numbers, page
//! bases).
//!
//! `std`'s default SipHash is keyed per-process and costs tens of
//! nanoseconds per probe — both properties are wrong here: frame lookups
//! sit under every memory access the interpreter simulates, and a
//! reproduction wants identical data-structure behavior run to run. A
//! single multiply by a high-entropy odd constant (the 64-bit golden
//! ratio, as in Fibonacci hashing) plus an xor-fold scrambles page-base
//! keys plenty: callers key by frame number or page base, which are
//! already unique per entry — the hash only needs to spread them across
//! buckets, not resist adversarial collisions.

use std::hash::{BuildHasherDefault, Hasher};

/// Hasher specialized for single-`u64` keys. Falls back to FNV-1a for
/// other widths so it stays a correct general [`Hasher`].
#[derive(Default)]
pub struct U64Hasher(u64);

impl Hasher for U64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mixed = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Fold the strong high bits down — hashbrown indexes buckets
        // with the low bits, and a bare multiply leaves those weak.
        self.0 = mixed ^ (mixed >> 32);
    }
}

/// `BuildHasher` for [`U64Hasher`] — stateless, so maps built with it
/// are deterministic across processes and runs.
pub type U64BuildHasher = BuildHasherDefault<U64Hasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn u64_keys_round_trip() {
        let mut m: HashMap<u64, u64, U64BuildHasher> = HashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&i));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        use std::hash::BuildHasher;
        let a = U64BuildHasher::default().hash_one(0xDEAD_BEEFu64);
        let b = U64BuildHasher::default().hash_one(0xDEAD_BEEFu64);
        assert_eq!(a, b);
        assert_ne!(a, U64BuildHasher::default().hash_one(0xDEAD_BEE0u64));
    }
}
