//! Physical and virtual address newtypes.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Log2 of the base page size (4 KiB), matching x86-64.
pub const PAGE_SHIFT: u64 = 12;
/// Base page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// The null address.
            pub const NULL: $name = $name(0);

            /// Raw 64-bit value.
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// True when this is the null address.
            pub const fn is_null(self) -> bool {
                self.0 == 0
            }

            /// Offset within the containing 4 KiB page.
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Address rounded down to its 4 KiB page boundary.
            pub const fn page_base(self) -> $name {
                $name(self.0 & !(PAGE_SIZE - 1))
            }

            /// Address rounded up to the next 4 KiB boundary (identity if
            /// already aligned).
            pub const fn page_align_up(self) -> $name {
                $name((self.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1))
            }

            /// True when aligned to `align` bytes (`align` must be a power
            /// of two).
            pub const fn is_aligned(self, align: u64) -> bool {
                self.0 & (align - 1) == 0
            }

            /// Checked addition of a byte offset.
            pub fn checked_add(self, off: u64) -> Option<$name> {
                self.0.checked_add(off).map($name)
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, rhs: u64) -> $name {
                $name(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<u64> for $name {
            type Output = $name;
            fn sub(self, rhs: u64) -> $name {
                $name(self.0 - rhs)
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> $name {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{:#x}"), self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_type!(
    /// A physical address in the unified (host-view) physical address
    /// space.
    ///
    /// # Examples
    ///
    /// ```
    /// use flick_mem::PhysAddr;
    ///
    /// let p = PhysAddr(0x1234);
    /// assert_eq!(p.page_base(), PhysAddr(0x1000));
    /// assert_eq!(p.page_offset(), 0x234);
    /// ```
    PhysAddr,
    "p"
);

addr_type!(
    /// A virtual address in a process address space (shared by all cores
    /// regardless of ISA).
    ///
    /// # Examples
    ///
    /// ```
    /// use flick_mem::VirtAddr;
    ///
    /// let v = VirtAddr(0x7fff_0000_1000);
    /// assert!(v.is_aligned(0x1000));
    /// ```
    VirtAddr,
    "v"
);

impl VirtAddr {
    /// Index into the page-table level `level` (0 = PT … 3 = PML4),
    /// matching the x86-64 9-bit-per-level split.
    pub const fn pt_index(self, level: u8) -> usize {
        ((self.0 >> (PAGE_SHIFT + 9 * level as u64)) & 0x1FF) as usize
    }

    /// Canonicalises bit 47 sign-extension the way x86-64 hardware does.
    pub const fn canonical(self) -> VirtAddr {
        let low = self.0 & 0x0000_FFFF_FFFF_FFFF;
        if low & (1 << 47) != 0 {
            VirtAddr(low | 0xFFFF_0000_0000_0000)
        } else {
            VirtAddr(low)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let a = PhysAddr(0x5678);
        assert_eq!(a.page_base(), PhysAddr(0x5000));
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.page_align_up(), PhysAddr(0x6000));
        assert_eq!(PhysAddr(0x6000).page_align_up(), PhysAddr(0x6000));
    }

    #[test]
    fn alignment() {
        assert!(VirtAddr(0x4000).is_aligned(0x4000));
        assert!(!VirtAddr(0x4008).is_aligned(0x4000));
        assert!(VirtAddr(0x4008).is_aligned(8));
    }

    #[test]
    fn arithmetic() {
        let a = VirtAddr(0x1000);
        assert_eq!(a + 0x20, VirtAddr(0x1020));
        assert_eq!((a + 0x20) - a, 0x20);
        assert_eq!(a.checked_add(u64::MAX), None);
    }

    #[test]
    fn pt_indices_split_address() {
        // va = PML4[1], PDPT[2], PD[3], PT[4], offset 5
        let va = VirtAddr((1 << 39) | (2 << 30) | (3 << 21) | (4 << 12) | 5);
        assert_eq!(va.pt_index(3), 1);
        assert_eq!(va.pt_index(2), 2);
        assert_eq!(va.pt_index(1), 3);
        assert_eq!(va.pt_index(0), 4);
        assert_eq!(va.page_offset(), 5);
    }

    #[test]
    fn canonicalisation() {
        let high = VirtAddr(0x0000_8000_0000_0000);
        assert_eq!(high.canonical(), VirtAddr(0xFFFF_8000_0000_0000));
        let low = VirtAddr(0x0000_7FFF_FFFF_FFFF);
        assert_eq!(low.canonical(), low);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PhysAddr(0x80000000).to_string(), "p0x80000000");
        assert_eq!(VirtAddr(0x400000).to_string(), "v0x400000");
    }
}
