//! NUMA access-latency model.
//!
//! The paper measures two key round-trip numbers on its prototype
//! (§V): the host x86 core reaches the NxP-side storage in ≈825 ns and
//! the NxP RISC-V core reaches its local storage in ≈267 ns. These two
//! values — and their ratio, which with the NxP's per-node loop cost
//! becomes the ≈2.6× asymptote of Fig. 5 — are the backbone of every
//! experiment, so the latency model is calibrated around them.

use crate::region::Region;
use flick_sim::Picos;

/// Who issues a memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Requester {
    /// An x86-64-like host core.
    HostCpu,
    /// The RV64-like NxP core.
    NxpCore,
    /// The NxP's programmable MMU (page-table walker).
    NxpMmu,
    /// The descriptor DMA engine.
    DmaEngine,
}

/// What kind of access is being made.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load (round trip: the requester waits for the data).
    Read,
    /// Data store (posted where the fabric allows it).
    Write,
    /// Instruction fetch (reads a cache line).
    Fetch,
}

/// Per-(requester, region) access latencies.
///
/// All values are *uncontended* point-to-point latencies; the simulation
/// does not model queueing, which the paper's single-thread experiments
/// do not exercise either.
///
/// # Examples
///
/// ```
/// use flick_mem::{AccessKind, LatencyModel, Region, Requester};
/// use flick_sim::Picos;
///
/// let m = LatencyModel::paper_default();
/// // The two headline calibration points from §V of the paper:
/// assert_eq!(
///     m.access(Requester::HostCpu, Region::NxpDram, AccessKind::Read),
///     Picos::from_nanos(825),
/// );
/// assert_eq!(
///     m.access(Requester::NxpCore, Region::NxpDram, AccessKind::Read),
///     Picos::from_nanos(267),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Host core → host DRAM (cache miss to local DDR4).
    pub host_to_host_dram: Picos,
    /// Host core → NxP DRAM through BAR0 (read round trip over PCIe).
    pub host_to_nxp_read: Picos,
    /// Host core → NxP resources, posted write over PCIe.
    pub host_to_nxp_write: Picos,
    /// NxP core → NxP local DRAM (DDR3 round trip).
    pub nxp_to_local_dram: Picos,
    /// NxP core → NxP stack SRAM (on-chip BRAM).
    pub nxp_to_sram: Picos,
    /// NxP core → NxP control registers.
    pub nxp_to_local_mmio: Picos,
    /// NxP core or MMU → host DRAM over PCIe (read round trip).
    pub nxp_to_host_read: Picos,
    /// NxP core → host DRAM posted write.
    pub nxp_to_host_write: Picos,
    /// DMA engine burst setup overhead per transfer.
    pub dma_setup: Picos,
    /// DMA payload cost per 64-byte beat over PCIe.
    pub dma_per_beat: Picos,
}

impl LatencyModel {
    /// Latencies calibrated to the paper's prototype (Table I platform,
    /// §V measurements).
    pub fn paper_default() -> Self {
        LatencyModel {
            host_to_host_dram: Picos::from_nanos(90),
            host_to_nxp_read: Picos::from_nanos(825),
            host_to_nxp_write: Picos::from_nanos(280),
            nxp_to_local_dram: Picos::from_nanos(267),
            nxp_to_sram: Picos::from_nanos(10),
            nxp_to_local_mmio: Picos::from_nanos(15),
            nxp_to_host_read: Picos::from_nanos(850),
            nxp_to_host_write: Picos::from_nanos(300),
            dma_setup: Picos::from_nanos(350),
            dma_per_beat: Picos::from_nanos(16),
        }
    }

    /// Latency of one access by `who` to an address in `region`.
    ///
    /// # Panics
    ///
    /// Panics on [`Region::Unmapped`]; bus decode errors must be caught
    /// before timing is charged.
    pub fn access(&self, who: Requester, region: Region, kind: AccessKind) -> Picos {
        let read = !matches!(kind, AccessKind::Write);
        match (who, region) {
            (_, Region::Unmapped) => panic!("access to unmapped region"),
            (Requester::HostCpu, Region::HostDram) => self.host_to_host_dram,
            (Requester::HostCpu, Region::NxpDram | Region::NxpSram | Region::NxpMmio) => {
                if read {
                    self.host_to_nxp_read
                } else {
                    self.host_to_nxp_write
                }
            }
            (Requester::NxpCore | Requester::NxpMmu, Region::HostDram) => {
                if read {
                    self.nxp_to_host_read
                } else {
                    self.nxp_to_host_write
                }
            }
            (Requester::NxpCore | Requester::NxpMmu, Region::NxpDram) => self.nxp_to_local_dram,
            (Requester::NxpCore | Requester::NxpMmu, Region::NxpSram) => self.nxp_to_sram,
            (Requester::NxpCore | Requester::NxpMmu, Region::NxpMmio) => self.nxp_to_local_mmio,
            // The DMA engine sits on the NxP side of the link; its
            // per-beat costs are charged separately via `dma_transfer`.
            (Requester::DmaEngine, Region::HostDram) => {
                if read {
                    self.nxp_to_host_read
                } else {
                    self.nxp_to_host_write
                }
            }
            (Requester::DmaEngine, _) => self.nxp_to_local_dram,
        }
    }

    /// Total time for a DMA burst of `bytes` across the link: setup plus
    /// one beat per 64 bytes (the paper transfers each migration
    /// descriptor as a single PCIe burst, §IV-B).
    pub fn dma_transfer(&self, bytes: usize) -> Picos {
        let beats = bytes.div_ceil(64) as u64;
        self.dma_setup + self.dma_per_beat * beats
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_points() {
        let m = LatencyModel::paper_default();
        assert_eq!(
            m.access(Requester::HostCpu, Region::NxpDram, AccessKind::Read),
            Picos::from_nanos(825)
        );
        assert_eq!(
            m.access(Requester::NxpCore, Region::NxpDram, AccessKind::Read),
            Picos::from_nanos(267)
        );
    }

    #[test]
    fn writes_cheaper_than_reads_over_pcie() {
        let m = LatencyModel::paper_default();
        let r = m.access(Requester::HostCpu, Region::NxpDram, AccessKind::Read);
        let w = m.access(Requester::HostCpu, Region::NxpDram, AccessKind::Write);
        assert!(w < r, "posted writes must be cheaper than read round trips");
    }

    #[test]
    fn local_faster_than_remote_for_both_sides() {
        let m = LatencyModel::paper_default();
        assert!(
            m.access(Requester::HostCpu, Region::HostDram, AccessKind::Read)
                < m.access(Requester::HostCpu, Region::NxpDram, AccessKind::Read)
        );
        assert!(
            m.access(Requester::NxpCore, Region::NxpDram, AccessKind::Read)
                < m.access(Requester::NxpCore, Region::HostDram, AccessKind::Read)
        );
    }

    #[test]
    fn mmu_walk_crosses_pcie() {
        let m = LatencyModel::paper_default();
        // The programmable MMU reads host page tables over PCIe — this is
        // exactly the "TLB miss penalty is high" point of §IV-A.
        assert_eq!(
            m.access(Requester::NxpMmu, Region::HostDram, AccessKind::Read),
            Picos::from_nanos(850)
        );
    }

    #[test]
    fn dma_burst_scales_with_beats() {
        let m = LatencyModel::paper_default();
        let one = m.dma_transfer(64);
        let two = m.dma_transfer(65);
        assert_eq!(two - one, m.dma_per_beat);
        assert_eq!(m.dma_transfer(0), m.dma_setup);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_access_panics() {
        let m = LatencyModel::paper_default();
        m.access(Requester::HostCpu, Region::Unmapped, AccessKind::Read);
    }
}
