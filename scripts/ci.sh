#!/usr/bin/env bash
# Full CI gate: release build, the whole workspace test suite, and
# clippy with warnings promoted to errors. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo build --release --benches
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the bench harness (1 sample) and gate the cheap, stable
# benches against the committed baseline: a >30% regression of the
# interpreter or the 1-NxP migration path fails CI loudly, and any
# drift in the deterministic fig_isa_matrix per-ISA-pair migration
# cost fails exactly (1 sample is enough — simulated time is exact).
tmp_bench="$(mktemp -t flick-bench-XXXXXX.json)"
trap 'rm -f "$tmp_bench"' EXIT
cargo bench -p flick-bench --bench simulator -- --samples 1 --json "$tmp_bench"
cargo run --release -p flick-bench --bin bench_gate -- BENCH_simulator.json "$tmp_bench"

# Block-lane differential smoke: the chaining suite proves step vs
# block vs chained engines bit-identical (timing, stats, faults) in
# release across all three ISAs, every fuel cutoff, SMC rewriting a
# chained successor mid-loop, and CR3 reloads between quanta.
cargo test -q --release --test blocks
echo "block chaining differential: ok"

# Topology x threads smoke matrix: every worker count must carry every
# topology's concurrent workload to completion, including a 3-ISA
# heterogeneous column (x64 host + rv64/arm64/rv64 accelerators —
# ISA-aware placement must route every call). The simulated timeline
# is worker-count-invariant (tests/determinism.rs proves bit-identity;
# this drives the examples end to end at each configuration).
for threads in 1 2 4; do
    for topo in "1 1" "2 2" "4 4"; do
        cargo run --release --example topology -- $topo --threads "$threads" > /dev/null
    done
    cargo run --release --example topology -- 1 3 --isas rv64,arm64 \
        --threads "$threads" > /dev/null
done
echo "topology x threads smoke matrix: 12 configurations ok"

# Failover chaos smoke: the dedicated suite soaks 12 seeds of combined
# link + device chaos in release (crash/hang/unplug/rejoin must be
# result-invisible with a balanced task census), then the example
# drives 8 more seeds end to end — it asserts its results against a
# fault-free twin internally.
cargo test -q --release --test failover
for seed in 1 2 3 4 5 6 7 8; do
    cargo run --release --example failover -- "$seed" > /dev/null
done
echo "failover chaos smoke: 8 seeds ok"

# Nightly ThreadSanitizer soak over the parallel host engine,
# non-blocking: data races in the worker/coordinator handoff surface
# here long before they perturb a timeline. Requires a nightly
# toolchain with rust-src (for -Zbuild-std); skipped when absent, and
# a finding is reported without failing the gate (TSan on an
# interpreter this hot is slow and occasionally flaky in CI runners).
if rustup toolchain list 2>/dev/null | grep -q '^nightly' \
    && rustup component list --toolchain nightly --installed 2>/dev/null | grep -q '^rust-src'; then
    host_triple="$(rustc -vV | sed -n 's/^host: //p')"
    if RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q \
        -Zbuild-std --target "$host_triple" --test determinism; then
        echo "tsan: determinism suite clean"
    else
        echo "tsan: FINDINGS (non-blocking) — run the determinism suite under" \
             "RUSTFLAGS=-Zsanitizer=thread locally to triage"
    fi
else
    echo "tsan: nightly toolchain with rust-src not installed, skipped"
fi

# Timeline-export smoke: a 2x2 observability run must emit a non-empty
# Chrome-trace JSON file (the example itself validates the JSON), and
# a heterogeneous run must name its Perfetto tracks by ISA.
tmp_trace="$(mktemp -t flick-timeline-XXXXXX.json)"
trap 'rm -f "$tmp_bench" "$tmp_trace"' EXIT
cargo run --release --example timeline -- 2 2 "$tmp_trace"
test -s "$tmp_trace"
cargo run --release --example timeline -- 1 2 "$tmp_trace" --isas rv64,arm64
grep -q 'nxp1 (arm64)' "$tmp_trace"
test -s "$tmp_trace"

# Serving-scenario smoke: the open-loop multi-tenant example must carry
# its load point end to end at two seeds and both worker counts (the
# dedicated suite in tests/serving.rs proves the sweep replays
# bit-identically; this drives the example binary itself), and the
# saturated fleet's Perfetto export must be non-empty (the example
# validates the JSON before writing).
for seed in 7 99; do
    for threads in 1 4; do
        cargo run --release --example serving -- \
            --seed "$seed" --threads "$threads" > /dev/null
    done
done
cargo run --release --example serving -- --timeline "$tmp_trace" > /dev/null
test -s "$tmp_trace"
echo "serving smoke: 2 seeds x threads {1,4} ok"
