#!/usr/bin/env bash
# Full CI gate: release build, the whole workspace test suite, and
# clippy with warnings promoted to errors. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo build --release --benches
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the bench harness (1 sample) and gate the cheap, stable
# benches against the committed baseline: a >30% regression of the
# interpreter or the 1-NxP migration path fails CI loudly.
tmp_bench="$(mktemp -t flick-bench-XXXXXX.json)"
trap 'rm -f "$tmp_bench"' EXIT
cargo bench -p flick-bench --bench simulator -- --samples 1 --json "$tmp_bench"
cargo run --release -p flick-bench --bin bench_gate -- BENCH_simulator.json "$tmp_bench"

# Topology smoke matrix: the classic 1x1 pair and a 2x2 fleet must both
# run the same concurrent workload to completion.
cargo run --release --example topology -- 1 1
cargo run --release --example topology -- 2 2

# Failover chaos smoke: the dedicated suite soaks 12 seeds of combined
# link + device chaos in release (crash/hang/unplug/rejoin must be
# result-invisible with a balanced task census), then the example
# drives 8 more seeds end to end — it asserts its results against a
# fault-free twin internally.
cargo test -q --release --test failover
for seed in 1 2 3 4 5 6 7 8; do
    cargo run --release --example failover -- "$seed" > /dev/null
done
echo "failover chaos smoke: 8 seeds ok"

# Timeline-export smoke: a 2x2 observability run must emit a non-empty
# Chrome-trace JSON file (the example itself validates the JSON).
tmp_trace="$(mktemp -t flick-timeline-XXXXXX.json)"
trap 'rm -f "$tmp_bench" "$tmp_trace"' EXIT
cargo run --release --example timeline -- 2 2 "$tmp_trace"
test -s "$tmp_trace"
