#!/usr/bin/env bash
# Full CI gate: release build, the whole workspace test suite, and
# clippy with warnings promoted to errors. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo build --release --benches
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the bench harness (1 sample: checks it runs, not the timings).
cargo bench -p flick-bench --bench simulator -- --samples 1
