#!/usr/bin/env bash
# Full CI gate: release build, the whole workspace test suite, and
# clippy with warnings promoted to errors. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
