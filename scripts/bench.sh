#!/usr/bin/env bash
# Runs the simulator wall-clock benchmarks and records the results as
# JSON at the repo root (BENCH_simulator.json), so the perf trajectory
# is tracked across PRs. Extra arguments are passed through to the
# bench harness, e.g. `scripts/bench.sh --samples 30`.
set -euo pipefail
cd "$(dirname "$0")/.."

# Cargo runs bench binaries with the package directory as cwd, so the
# output path must be absolute to land at the repo root.
cargo bench -p flick-bench --bench simulator -- --json "$PWD/BENCH_simulator.json" "$@"
